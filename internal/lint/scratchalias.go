package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"concordia/internal/lint/analysis"
)

// ScratchAlias enforces the scratch-reuse builder contract from DESIGN.md
// §5f: the return value of a *Into/*Append builder (DemodulateLLRInto,
// DematchInto, ofdm.DemodulateAppend, ...) aliases the caller-provided
// scratch buffer and is valid only until the next builder call on that same
// buffer. Two things break that contract: retaining the result somewhere
// long-lived (the next call silently rewrites it underneath the holder),
// and reading a previous result after a second call reused the backing
// array. The sanctioned idiom — storing the possibly-grown slice back into
// the receiver's own scratch field (t.rxLLR = llr) — is exempt.
var ScratchAlias = &analysis.Analyzer{
	Name: "scratchalias",
	Doc: "forbid retaining *Into/*Append builder results beyond the next call on the " +
		"same scratch buffer; results alias reused backing arrays (receiver scratch " +
		"store-backs are the sanctioned idiom)",
	Run: runScratchAlias,
}

func runScratchAlias(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkScratchAliasFunc(pass, fn)
		}
	}
	return nil, nil
}

// isScratchBuilderName recognizes the builder naming convention. The
// comparison is case-sensitive on the suffix so the builtin append and
// lower-case helpers do not match.
func isScratchBuilderName(name string) bool {
	for _, suf := range []string{"Into", "Append"} {
		if strings.HasSuffix(name, suf) && len(name) > len(suf) {
			return true
		}
	}
	return false
}

type scratchCall struct {
	call *ast.CallExpr
	name string // builder name, for diagnostics
	key  string // canonical spelling of the scratch-buffer argument
}

type scratchResult struct {
	obj       types.Object
	from      scratchCall
	assignEnd token.Pos // loan starts after the assignment completes
	kill      token.Pos // first rebinding of obj after assignEnd, or NoPos
}

func checkScratchAliasFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var recvObj types.Object
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recvObj = pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
	}

	// Collect every builder call, keyed by its scratch-buffer argument.
	var calls []scratchCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		name := calleeName(call)
		if !isScratchBuilderName(name) {
			return true
		}
		calls = append(calls, scratchCall{call: call, name: name, key: exprKey(call.Args[0])})
		return true
	})
	if len(calls) == 0 {
		return
	}
	isScratchCall := map[*ast.CallExpr]scratchCall{}
	for _, sc := range calls {
		isScratchCall[sc.call] = sc
	}

	// Result variables: locals bound to a builder's return value whose type
	// can alias the scratch backing array (slices, pointers). Multi-value
	// forms (llr, err := ...Into(...)) bind the first lhs.
	var results []*scratchResult
	byObj := map[types.Object][]*scratchResult{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sc, ok := isScratchCall[call]
		if !ok || len(as.Lhs) == 0 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOf(pass, id)
		if obj == nil || !declaredWithin(obj, fn) {
			return true
		}
		switch obj.Type().Underlying().(type) {
		case *types.Slice, *types.Pointer:
		default:
			return true
		}
		r := &scratchResult{obj: obj, from: sc, assignEnd: as.End()}
		results = append(results, r)
		byObj[obj] = append(byObj[obj], r)
		return true
	})

	// Kill points: a result variable rebound after its assignment holds a
	// fresh result; uses past the rebinding refer to the new loan. A variable
	// bound to builder results more than once kills each earlier binding at
	// the next one.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			for _, r := range byObj[objOf(pass, id)] {
				if as.Pos() <= r.assignEnd {
					continue
				}
				if r.kill == token.NoPos || as.Pos() < r.kill {
					r.kill = as.Pos()
				}
			}
		}
		return true
	})

	// Rule A — retention: a builder result (direct or via a result variable)
	// stored into memory that outlives this call. Receiver scratch fields
	// are the sanctioned home for the grown buffer.
	resultObjs := map[types.Object]bool{}
	for _, r := range results {
		resultObjs[r.obj] = true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			var name string
			if call, ok := rhs.(*ast.CallExpr); ok {
				if sc, isSC := isScratchCall[call]; isSC {
					name = sc.name
				}
			}
			if name == "" {
				obj := aliasedOrigin(pass, rhs, resultObjs)
				if obj == nil {
					continue
				}
				if t := pass.TypesInfo.Types[rhs].Type; t == nil || !retainsMemory(t) {
					continue
				}
				rs := byObj[obj]
				name = rs[len(rs)-1].from.name
			}
			if escapes, route := storeEscapes(pass, fn, as.Lhs[i], recvObj); escapes {
				pass.Reportf(as.Lhs[i].Pos(),
					"%s result stored in %s outlives the scratch buffer it aliases; the next "+
						"builder call rewrites it in place — copy the data out or store it only "+
						"in the receiver's own scratch field",
					name, route)
			}
		}
		return true
	})

	// Rule B — stale read: result variable v from a call on buffer K is read
	// after a later builder call reused K. Only trackable keys participate.
	for _, r := range results {
		if r.from.key == "" {
			continue
		}
		var reuse *scratchCall
		for i := range calls {
			b := &calls[i]
			if b.call == r.from.call || b.key != r.from.key {
				continue
			}
			if b.call.Pos() <= r.assignEnd {
				continue
			}
			if r.kill != token.NoPos && b.call.Pos() >= r.kill {
				continue
			}
			if reuse == nil || b.call.Pos() < reuse.call.Pos() {
				reuse = b
			}
		}
		if reuse == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if reuse == nil {
				return false
			}
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != r.obj {
				return true
			}
			if id.Pos() <= reuse.call.End() {
				return true
			}
			if r.kill != token.NoPos && id.Pos() >= r.kill {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s read after %s on line %d reused scratch buffer %s; the backing array "+
					"was rewritten — consume the result before the next builder call or use "+
					"a separate buffer",
				r.obj.Name(), reuse.name,
				pass.Fset.Position(reuse.call.Pos()).Line, r.from.key)
			reuse = nil // one report per variable is enough
			return false
		})
	}
	return
}
