package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*Allow, []Problem) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, problems := parseAllows(fset, []*ast.File{f})
	return fset, allows, problems
}

func TestParseAllows(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //lint:allow walltime measuring the reproduction's own overhead
	//lint:allow maporder feeding an order-insensitive hash
	_ = 2
}
`
	_, allows, problems := parseOne(t, src)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	if len(allows) != 2 {
		t.Fatalf("want 2 allows, got %d", len(allows))
	}
	if allows[0].Rule != "walltime" || allows[0].Line != 4 {
		t.Errorf("allow[0] = %+v", allows[0])
	}
	if allows[0].Reason != "measuring the reproduction's own overhead" {
		t.Errorf("reason not joined: %q", allows[0].Reason)
	}
	if allows[1].Rule != "maporder" || allows[1].Line != 5 {
		t.Errorf("allow[1] = %+v", allows[1])
	}
}

func TestParseAllowsMalformed(t *testing.T) {
	src := `package p

//lint:allow walltime
func f() {}
`
	_, allows, problems := parseOne(t, src)
	if len(allows) != 0 {
		t.Fatalf("malformed allow must not register: %v", allows)
	}
	if len(problems) != 1 {
		t.Fatalf("want 1 problem for reason-less allow, got %d", len(problems))
	}
}

func TestMatchScope(t *testing.T) {
	src := `package p

func f() {
	//lint:allow walltime reason here
	_ = 1
}
`
	_, allows, _ := parseOne(t, src)
	if len(allows) != 1 {
		t.Fatal("setup")
	}
	// The allow on line 4 covers diagnostics on line 4 (trailing form) and
	// line 5 (line-above form), for its own rule only.
	if match(allows, "walltime", "fixture.go", 5) == nil {
		t.Error("line-above suppression did not match")
	}
	allows[0].Used = false
	if match(allows, "walltime", "fixture.go", 6) != nil {
		t.Error("suppression leaked two lines down")
	}
	if match(allows, "maporder", "fixture.go", 5) != nil {
		t.Error("suppression matched the wrong rule")
	}
	if match(allows, "walltime", "other.go", 5) != nil {
		t.Error("suppression matched the wrong file")
	}
}
