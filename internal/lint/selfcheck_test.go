package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"concordia/internal/lint"
)

// TestModuleLintsClean runs the full determinism suite over the real module
// — exactly what `make lint` / cmd/concordialint do — and requires a clean
// exit. It also pins the two sanctioned wall-clock experiments as the only
// expected suppressions, so a stray //lint:allow elsewhere is caught here
// even before the stale-allow check would be.
//
// Skipped under -short: the run type-checks the whole module (and the
// standard library, from source) which costs tens of seconds, and CI runs
// cmd/concordialint directly in the same workflow.
func TestModuleLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow; concordialint runs directly in make lint / CI")
	}
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := lint.RunModule(root, nil)
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("finding: %s", d)
	}
	for _, d := range res.Problems {
		t.Errorf("suppression problem: %s", d)
	}
	if res.UnitsRun < 15 {
		t.Errorf("only %d units analyzed; the module walk looks broken", res.UnitsRun)
	}
	// The sanctioned host-time experiments must stay annotated, not silently
	// rewritten into the allowlist.
	var walltimeSuppressed int
	for _, d := range res.Suppressed {
		if d.Rule != "walltime" {
			t.Errorf("unexpected non-walltime suppression: %s", d)
			continue
		}
		name := d.Pos.Filename
		if !strings.HasSuffix(name, "overhead.go") && !strings.HasSuffix(name, "calibration.go") {
			t.Errorf("walltime suppression outside the sanctioned experiments: %s", d)
		}
		walltimeSuppressed++
	}
	if walltimeSuppressed == 0 {
		t.Error("expected //lint:allow walltime annotations in overhead.go/calibration.go; found none")
	}
}

// TestPlantedViolationsAreCaught is the acceptance check from the issue: a
// time.Now() planted in internal/scheduler, a raw go statement planted in
// internal/experiments, and a freelist checkout retained past its loan in
// internal/pool must each produce a finding naming the rule and the
// sanctioned alternative. Rather than mutating the tree, it runs the suite
// over a scratch module whose packages mirror those paths.
func TestPlantedViolationsAreCaught(t *testing.T) {
	root := t.TempDir()
	writeScratchModule(t, root, map[string]string{
		"go.mod": "module concordia\n\ngo 1.22\n",
		"internal/scheduler/sched.go": `package scheduler

import "time"

func Decide() int64 { return time.Now().UnixNano() }
`,
		"internal/experiments/exp.go": `package experiments

func Fan(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		go fn(i)
	}
}
`,
		"internal/pool/pool.go": `package pool

type dag struct{ tasks []int }

type Pool struct {
	free []*dag
	held []*dag
}

func (p *Pool) getDAG() *dag {
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free = p.free[:n-1]
		return d
	}
	return &dag{}
}

func (p *Pool) putDAG(d *dag) { p.free = append(p.free, d) }

func (p *Pool) Leak() {
	d := p.getDAG()
	p.held = append(p.held, d)
}
`,
	})
	res, err := lint.RunModule(root, nil)
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	requireFinding(t, res, "walltime", "internal/scheduler/sched.go", "sim.Engine.Now")
	requireFinding(t, res, "goroutinescope", "internal/experiments/exp.go", "parallel.ForEach")
	requireFinding(t, res, "poolescape", "internal/pool/pool.go", "lint:pool-owner")
	if len(res.Diags) != 3 {
		t.Errorf("want exactly the 3 planted findings, got %d: %v", len(res.Diags), res.Diags)
	}
}

// TestSuppressionAccountingHardFails pins satellite behaviour: a stale
// //lint:allow (matching no finding) and one naming an unknown rule must each
// surface as Problems that flip Clean() to false, so they fail `make lint`
// rather than accumulating silently.
func TestSuppressionAccountingHardFails(t *testing.T) {
	root := t.TempDir()
	writeScratchModule(t, root, map[string]string{
		"go.mod": "module concordia\n\ngo 1.22\n",
		"internal/x/x.go": `package x

func ok() int {
	return 1 //lint:allow walltime nothing on this line reads the clock
}

func alsoOK() int {
	return 2 //lint:allow walltome typo in the rule name
}
`,
	})
	res, err := lint.RunModule(root, nil)
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	if res.Clean() {
		t.Fatal("Clean() = true despite a stale and an unknown-rule suppression")
	}
	if len(res.Diags) != 0 {
		t.Errorf("no analyzer findings expected, got %v", res.Diags)
	}
	var stale, unknown bool
	for _, p := range res.Problems {
		if strings.Contains(p.Message, "stale //lint:allow walltime") {
			stale = true
		}
		if strings.Contains(p.Message, `unknown rule "walltome"`) {
			if !strings.Contains(p.Message, "poolescape") {
				t.Errorf("unknown-rule problem should list the known rules, got: %s", p.Message)
			}
			unknown = true
		}
	}
	if !stale {
		t.Errorf("no stale-suppression problem reported; problems: %v", res.Problems)
	}
	if !unknown {
		t.Errorf("no unknown-rule problem reported; problems: %v", res.Problems)
	}
}

func requireFinding(t *testing.T, res *lint.Result, rule, fileSuffix, alternative string) {
	t.Helper()
	for _, d := range res.Diags {
		if d.Rule == rule && strings.HasSuffix(d.Pos.Filename, fileSuffix) {
			if !strings.Contains(d.Message, alternative) {
				t.Errorf("%s finding does not name the sanctioned alternative %q: %s", rule, alternative, d.Message)
			}
			return
		}
	}
	t.Errorf("no %s finding in %s; diags: %v", rule, fileSuffix, res.Diags)
}

func writeScratchModule(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
