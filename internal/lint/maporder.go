package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"concordia/internal/lint/analysis"
)

// MapOrder flags `range` loops over maps whose bodies do order-sensitive
// work: appending to an outer slice, writing output, or accumulating
// floating-point values. Go randomizes map iteration order per run, so any
// of these makes the result a function of the hash seed. The sanctioned
// pattern is to collect the keys (that one append form is recognized and
// exempt), sort them, and iterate the sorted slice. Order-insensitive bodies
// — writing into another map under the ranged key, integer counting,
// set-membership tests — pass untouched.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-dependent work (appends, output writes, float accumulation) " +
		"inside range-over-map; iterate sorted keys instead",
	Run: runMapOrder,
}

// outputMethods are writer-style method names whose calls emit bytes in
// iteration order.
var outputMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass, rs) {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
	return nil, nil
}

func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// keyObj returns the object of the range key variable, if it is a named
// identifier.
func keyObj(pass *analysis.Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Uses[id]
}

func checkMapRangeBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	key := keyObj(pass, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			// A nested map-range is analyzed on its own visit; descending
			// here would double-report its body.
			if x != rs && rangesOverMap(pass, x) {
				return false
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, key, x)
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, x)
		}
		return true
	})
}

func checkMapRangeCall(pass *analysis.Pass, rs *ast.RangeStmt, key types.Object, call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "append" || len(call.Args) == 0 {
			return
		}
		if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
			return
		}
		root := lvalueRoot(call.Args[0])
		if root == nil {
			return
		}
		obj := objOf(pass, root)
		if obj == nil || declaredWithin(obj, rs) {
			return
		}
		// The sanctioned key-collection prelude: keys = append(keys, k).
		if key != nil && len(call.Args) == 2 && !call.Ellipsis.IsValid() {
			if id, ok := call.Args[1].(*ast.Ident); ok && objOf(pass, id) == key {
				return
			}
		}
		pass.Reportf(call.Pos(),
			"append to %q inside range-over-map records the randomized iteration order; "+
				"collect the keys, sort them, and range over the sorted slice instead",
			root.Name)
	case *ast.SelectorExpr:
		if pkg, member, ok := importedPkg(pass, fun); ok {
			if pkg == "fmt" && (strings.HasPrefix(member, "Print") || strings.HasPrefix(member, "Fprint")) {
				pass.Reportf(call.Pos(),
					"fmt.%s inside range-over-map emits rows in randomized order; "+
						"iterate sorted keys instead", member)
			}
			return
		}
		if outputMethods[fun.Sel.Name] {
			if root := lvalueRoot(fun.X); root != nil {
				if obj := objOf(pass, root); obj != nil && !declaredWithin(obj, rs) {
					pass.Reportf(call.Pos(),
						"%s.%s inside range-over-map emits bytes in randomized order; "+
							"iterate sorted keys instead", root.Name, fun.Sel.Name)
				}
			}
		}
	}
}

func checkMapRangeAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	if as.Tok.String() == ":=" {
		return
	}
	compound := as.Tok.String() != "="
	for _, lhs := range as.Lhs {
		root := lvalueRoot(lhs)
		if root == nil {
			continue
		}
		obj := objOf(pass, root)
		if obj == nil || declaredWithin(obj, rs) {
			continue
		}
		// Writes keyed by the loop variable (m2[k] = v, counts[k]++) land in
		// a distinct slot per iteration and are order-independent.
		if indexedByLocal(pass, lhs, rs) {
			continue
		}
		t := pass.TypesInfo.TypeOf(lhs)
		if t == nil || !isFloat(t) {
			continue
		}
		if compound {
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %q inside range-over-map depends on the "+
					"randomized iteration order (float addition is not associative); "+
					"iterate sorted keys instead", root.Name)
		} else {
			pass.Reportf(as.Pos(),
				"assignment to %q inside range-over-map is last-writer-wins in randomized "+
					"order (ties break differently per run); iterate sorted keys instead",
				root.Name)
		}
	}
}
