// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, implemented on the standard library only.
//
// The build environment for this repository is hermetic — no module proxy,
// no vendored third-party code — so the x/tools analysis framework cannot be
// pulled in as a dependency. The determinism analyzers in internal/lint are
// written against this shim instead. The shim deliberately mirrors the
// upstream field and method names (Analyzer.Name/Doc/Run, Pass.Fset/Files/
// Pkg/TypesInfo/Report/Reportf, Diagnostic.Pos/Message) so that, should
// golang.org/x/tools become available (see tools/ for the pinned version),
// each analyzer ports by changing a single import line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static-analysis rule: a name (also the key used by
// //lint:allow suppression comments), human-readable documentation, and a Run
// function invoked once per type-checked package.
type Analyzer struct {
	// Name identifies the rule in diagnostics and suppression comments.
	// It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by `concordialint -help`.
	Doc string

	// Run applies the rule to a single package. Findings are delivered
	// through pass.Report / pass.Reportf; the result value is unused by
	// this driver and exists only for upstream API compatibility.
	Run func(*Pass) (any, error)
}

// Pass carries everything an Analyzer needs to inspect one package: the
// position table, the parsed files, the type-checked package object, and the
// fully populated types.Info.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver. The driver applies
	// //lint:allow filtering after this call, so analyzers always report
	// and never inspect suppression comments themselves.
	Report func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
