package lint

import (
	"go/ast"

	"concordia/internal/lint/analysis"
)

// goroutineAllowedPkgs own concurrency: the index-ordered worker pool is the
// one place goroutines are spawned, and the simulator is allowed its own
// machinery.
var goroutineAllowedPkgs = []string{
	"concordia/internal/parallel",
	"concordia/internal/sim",
}

// GoroutineScope forbids raw `go` statements and sync.WaitGroup outside the
// worker pool. Ad-hoc fan-out is where completion-order nondeterminism
// enters: results arrive in scheduling order, errors race, and the outcome
// depends on GOMAXPROCS. parallel.ForEach / parallel.Map give the same
// concurrency with index-ordered results and deterministic error selection.
// _test.go files are exempt (tests may exercise concurrency directly, and the
// race gate in `make check` covers them).
var GoroutineScope = &analysis.Analyzer{
	Name: "goroutinescope",
	Doc: "forbid raw go statements and sync.WaitGroup outside internal/parallel and " +
		"internal/sim; fan out through parallel.ForEach / parallel.Map",
	Run: runGoroutineScope,
}

func runGoroutineScope(pass *analysis.Pass) (any, error) {
	if pkgAllowed(pass, goroutineAllowedPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(x.Pos(),
					"raw go statement bypasses the deterministic worker pool; results will "+
						"arrive in scheduling order — use parallel.ForEach or parallel.Map "+
						"(internal/parallel), which collect into index-ordered slots")
			case *ast.SelectorExpr:
				pkg, member, ok := importedPkg(pass, x)
				if ok && pkg == "sync" && member == "WaitGroup" {
					pass.Reportf(x.Pos(),
						"sync.WaitGroup outside internal/parallel implies hand-rolled fan-out; "+
							"use parallel.ForEach or parallel.Map, which own the only sanctioned "+
							"goroutine spawn sites")
				}
			}
			return true
		})
	}
	return nil, nil
}
