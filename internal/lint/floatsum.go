package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"concordia/internal/lint/analysis"
)

// FloatSum enforces the reduction side of the worker-pool determinism
// contract (internal/parallel): a callback handed to parallel.ForEach or
// parallel.Map may only communicate through its own index slot. Accumulating
// into a variable captured from the enclosing scope (sum += x, best = v,
// n++) folds shard results in completion order — nondeterministic for floats
// (addition is not associative) and a data race for every type. The
// sanctioned shape writes per-index results into a slice and reduces
// afterwards, in index order, with parallel.SumOrdered or parallel.Reduce.
var FloatSum = &analysis.Analyzer{
	Name: "floatsum",
	Doc: "forbid accumulation into captured variables inside parallel.ForEach/Map " +
		"callbacks; write index slots and reduce with parallel.SumOrdered/Reduce",
	Run: runFloatSum,
}

const parallelPkg = "concordia/internal/parallel"

func runFloatSum(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isParallelFanout(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					checkCallback(pass, lit)
				}
			}
			return true
		})
	}
	return nil, nil
}

// isParallelFanout reports whether call invokes parallel.ForEach or
// parallel.Map (possibly explicitly instantiated).
func isParallelFanout(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := call.Fun
	if ix, ok := fun.(*ast.IndexExpr); ok { // Map[T](...) explicit instantiation
		fun = ix.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != parallelPkg {
		return false
	}
	return fn.Name() == "ForEach" || fn.Name() == "Map"
}

func checkCallback(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok.String() == ":=" {
				return true
			}
			compound := x.Tok.String() != "="
			for _, lhs := range x.Lhs {
				reportCapturedWrite(pass, lit, x.Pos(), lhs, compound)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, lit, x.Pos(), x.X, true)
		}
		return true
	})
}

// reportCapturedWrite flags writes through variables captured from outside
// the callback, unless the write lands in a slot indexed by a
// callback-local variable (out[i] = v — the sanctioned pattern). Compound
// writes are flagged for every numeric type (the int case is still a data
// race in completion order); plain assignment is flagged for floats, where
// last-writer-wins picks a different value each run.
func reportCapturedWrite(pass *analysis.Pass, lit *ast.FuncLit, pos token.Pos, lhs ast.Expr, compound bool) {
	root := lvalueRoot(lhs)
	if root == nil {
		return
	}
	obj := objOf(pass, root)
	if obj == nil || declaredWithin(obj, lit) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if indexedByLocal(pass, lhs, lit) {
		return
	}
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return
	}
	switch {
	case compound && isNumeric(t):
		pass.Reportf(pos,
			"accumulation into %q captured by a parallel callback folds shard results in "+
				"completion order (racy, and order-dependent for floats); write per-index "+
				"results and reduce afterwards with parallel.SumOrdered or parallel.Reduce",
			root.Name)
	case !compound && isFloat(t):
		pass.Reportf(pos,
			"assignment to float %q captured by a parallel callback is last-writer-wins in "+
				"completion order; write per-index results and reduce afterwards with "+
				"parallel.SumOrdered or parallel.Reduce", root.Name)
	}
}
