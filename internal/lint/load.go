package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Root is one tree of Go source the Loader can resolve import paths against.
//
// With Module set, import path "Module" maps to Dir and "Module/x/y" maps to
// Dir/x/y (the layout of a Go module). With Module == "", the root is
// GOPATH-style: import path "x/y" maps to Dir/x/y. The analysistest harness
// uses a GOPATH-style root over testdata/src so fixture packages can claim
// arbitrary import paths (including allowlisted ones like
// concordia/internal/sim).
type Root struct {
	Module string // module path, or "" for GOPATH-style resolution
	Dir    string // absolute directory the root maps to
}

// Unit is one type-checked collection of files ready for analysis: either a
// package's production sources (optionally with in-package test files), or an
// external _test package.
type Unit struct {
	// Path is the import path of the directory; external test packages get
	// a "_test" suffix so allowlists keyed on production paths do not
	// accidentally cover them.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages using only the standard library.
// Imports within a configured Root are type-checked from source recursively;
// everything else (the standard library) is resolved through go/importer's
// source-mode importer. All packages share one FileSet and one package cache,
// so a module-wide run type-checks the standard library once.
type Loader struct {
	Fset  *token.FileSet
	roots []Root
	std   types.ImporterFrom
	cache map[string]*types.Package
}

// NewLoader returns a Loader resolving imports against roots, in order, then
// the standard library.
func NewLoader(roots ...Root) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:  fset,
		roots: roots,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache: map[string]*types.Package{},
	}
}

// dirFor resolves an import path to a directory under one of the roots.
// GOPATH-style roots claim a path only if the directory actually exists, so
// unmatched paths fall through to the standard library importer.
func (l *Loader) dirFor(path string) (string, bool) {
	for _, r := range l.roots {
		if r.Module == "" {
			dir := filepath.Join(r.Dir, filepath.FromSlash(path))
			if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
				return dir, true
			}
			continue
		}
		if path == r.Module {
			return r.Dir, true
		}
		if strings.HasPrefix(path, r.Module+"/") {
			return filepath.Join(r.Dir, filepath.FromSlash(strings.TrimPrefix(path, r.Module+"/"))), true
		}
	}
	return "", false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom. Packages imported this way are
// type-checked without test files and memoized.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		p, err := l.std.ImportFrom(path, srcDir, mode)
		if err == nil {
			l.cache[path] = p
		}
		return p, err
	}
	files, _, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s (import %q)", dir, path)
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses the buildable Go files of dir, split into production files
// (plus in-package test files when withTests is set) and external-test-package
// files. Files carrying //go:build constraints are skipped unless the
// constraint is satisfied by the default (tagless) build — i.e. it consists
// solely of negated tags, like the `!poolcheck` no-op stubs. Replicating full
// go/build constraint evaluation is out of scope; files needing positive tags
// (tools, poolcheck_on) are exactly the ones a default `go build` excludes
// too, so skipping them keeps the lint view aligned with the shipped binary.
func (l *Loader) parseDir(dir string, withTests bool) (prod, xtest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !withTests {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		if constrained(f) {
			continue
		}
		if !isTest {
			prod = append(prod, f)
			continue
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			xtest = append(xtest, f)
		} else {
			prod = append(prod, f)
		}
	}
	return prod, xtest, nil
}

// constrained reports whether the file carries a //go:build (or legacy
// // +build) constraint before its package clause that excludes it from the
// default, tagless build. Constraints made solely of negated plain tags
// (`//go:build !poolcheck`, `!a && !b`) are satisfied with no tags set, so
// those files are analyzed; anything requiring a positive tag is skipped.
func constrained(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "go:build"); ok {
				if !defaultBuildSatisfied(rest) {
					return true
				}
				continue
			}
			if rest, ok := strings.CutPrefix(text, "+build"); ok {
				if !defaultBuildSatisfied(rest) {
					return true
				}
			}
		}
	}
	return false
}

// defaultBuildSatisfied conservatively evaluates a build-constraint
// expression under the empty tag set: true only when every term is a negated
// plain tag (separators `&&`, `||`, `,` and spaces all reduce to the same
// answer then — each `!tag` term is individually true with no tags defined).
// Any positive term, parenthesis, or other syntax yields false, erring
// toward skipping the file.
func defaultBuildSatisfied(expr string) bool {
	fields := strings.FieldsFunc(expr, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
	terms := 0
	for _, tok := range fields {
		if tok == "&&" || tok == "||" {
			continue
		}
		name, ok := strings.CutPrefix(tok, "!")
		if !ok || name == "" {
			return false
		}
		for _, r := range name {
			if !(r == '_' || r == '.' || r == '-' ||
				('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')) {
				return false
			}
		}
		terms++
	}
	return terms > 0
}

// LoadDir type-checks the package in dir (with import path path) and returns
// the analysis units it yields: the production package including in-package
// test files, and, if present, the external _test package. A directory with
// no Go files yields no units.
func (l *Loader) LoadDir(dir, path string) ([]*Unit, error) {
	prod, xtest, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	if len(prod) > 0 {
		u, err := l.check(path, prod)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(xtest) > 0 {
		u, err := l.check(path+"_test", xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

func (l *Loader) check(path string, files []*ast.File) (*Unit, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Unit{Path: path, Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ModuleDirs returns the import-path-relative directories of every package in
// the module rooted at root (".", "internal/phy", ...), skipping testdata
// trees, hidden directories, and nested modules such as tools/.
func ModuleDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		if rel != "." {
			base := filepath.Base(rel)
			if base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir // nested module (tools/)
			}
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ModulePath reads the module path from the go.mod at root.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
