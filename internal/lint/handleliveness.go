package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"concordia/internal/lint/analysis"
)

// handleAllowedPkgs own handle lifecycles by construction: the simulator
// itself recycles slots behind the generation check, so its internal
// bookkeeping (Ticker.ev) is exempt.
var handleAllowedPkgs = []string{"concordia/internal/sim"}

// HandleLiveness enforces the event-handle lifecycle from DESIGN.md §5f.
// sim.EventHandle is a generation-tagged (idx, gen) pair into the engine's
// slot table; the generation check makes a stale Cancel a silent no-op, not
// a crash, so stale handles hide bugs rather than reveal them. Two rules:
// a struct field holding an EventHandle that is ever scheduled into must
// also be cleared (assigned sim.EventHandle{}) somewhere, so retire paths
// cannot leak a live handle into a recycled object; and a handle reachable
// from a pooled object must not be Canceled (or queried) after the object's
// put/recycle call in the same function.
var HandleLiveness = &analysis.Analyzer{
	Name: "handleliveness",
	Doc: "forbid sim.EventHandle fields that are scheduled into but never cleared, and " +
		"Cancel/Canceled/Scheduled calls on handles of already-recycled pool objects",
	Run: runHandleLiveness,
}

func runHandleLiveness(pass *analysis.Pass) (any, error) {
	if pkgAllowed(pass, handleAllowedPkgs...) {
		return nil, nil
	}
	checkHandleFieldsCleared(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkHandleUseAfterPut(pass, fn)
		}
	}
	return nil, nil
}

// isEventHandleType matches the named type EventHandle from any package
// whose import path ends in internal/sim (the real engine, or the fixture
// stand-in under testdata).
func isEventHandleType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "EventHandle" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}

// isEngineMethod reports whether call is a handle-lifecycle method
// (Cancel/Canceled/Scheduled) on a sim.Engine value.
func isEngineMethod(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Cancel", "Canceled", "Scheduled":
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/sim")
}

// checkHandleFieldsCleared applies rule 1 package-wide: every EventHandle
// struct field that some production code schedules into (x.field = e.After(...))
// must be cleared (x.field = sim.EventHandle{}) somewhere in the package.
// The clear may live in a different function than the schedule — retire
// paths are usually separate — so the accounting is per field object, not
// per function.
func checkHandleFieldsCleared(pass *analysis.Pass) {
	handleFields := map[types.Object]bool{}
	for id, obj := range pass.TypesInfo.Defs {
		_ = id
		if v, ok := obj.(*types.Var); ok && v.IsField() && isEventHandleType(v.Type()) {
			handleFields[obj] = true
		}
	}
	if len(handleFields) == 0 {
		return
	}
	schedPos := map[types.Object]token.Pos{}
	cleared := map[types.Object]bool{}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj == nil || !handleFields[obj] {
					continue
				}
				switch as.Rhs[i].(type) {
				case *ast.CallExpr:
					if p, seen := schedPos[obj]; !seen || lhs.Pos() < p {
						schedPos[obj] = lhs.Pos()
					}
				case *ast.CompositeLit:
					cleared[obj] = true
				default:
					// Copying one handle field to another neither schedules
					// nor clears; ignore.
				}
			}
			return true
		})
	}
	for obj, pos := range schedPos {
		if cleared[obj] {
			continue
		}
		pass.Reportf(pos,
			"EventHandle field %s is scheduled into but never cleared; a retired object "+
				"would carry a live handle into its next checkout — assign sim.EventHandle{} "+
				"on the completion/retire path",
			obj.Name())
	}
}

// checkHandleUseAfterPut applies rule 2 per function: after a pool putter
// releases an object, Engine.Cancel/Canceled/Scheduled must not be invoked
// on anything reachable from it — the recycled slot may already carry the
// next occupant's handle.
func checkHandleUseAfterPut(pass *analysis.Pass, fn *ast.FuncDecl) {
	putEnd := map[types.Object]token.Pos{}
	putName := map[types.Object]string{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !poolPutters[calleeName(call)] {
			return true
		}
		root := lvalueRoot(call.Args[0])
		if root == nil {
			return true
		}
		obj := objOf(pass, root)
		if obj == nil || !declaredWithin(obj, fn) {
			return true
		}
		if end, seen := putEnd[obj]; !seen || call.End() < end {
			putEnd[obj] = call.End()
			putName[obj] = calleeName(call)
		}
		return true
	})
	if len(putEnd) == 0 {
		return
	}
	kill := map[types.Object]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(pass, id)
			end, hasPut := putEnd[obj]
			if !hasPut || as.Pos() <= end {
				continue
			}
			if k, seen := kill[obj]; !seen || as.Pos() < k {
				kill[obj] = as.Pos()
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isEngineMethod(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			var obj types.Object
			ast.Inspect(arg, func(m ast.Node) bool {
				if obj != nil {
					return false
				}
				if id, ok := m.(*ast.Ident); ok {
					if o := pass.TypesInfo.Uses[id]; o != nil {
						if _, tracked := putEnd[o]; tracked {
							obj = o
						}
					}
				}
				return obj == nil
			})
			if obj == nil {
				continue
			}
			end := putEnd[obj]
			if call.Pos() <= end {
				continue
			}
			if k, killed := kill[obj]; killed && call.Pos() >= k {
				continue
			}
			sel := call.Fun.(*ast.SelectorExpr)
			pass.Reportf(call.Pos(),
				"%s on a handle of %s after %s recycled it; the slot may already belong "+
					"to the next occupant — cancel before releasing the object",
				sel.Sel.Name, obj.Name(), putName[obj])
			return true
		}
		return true
	})
}
