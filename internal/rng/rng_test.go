package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed generator has poor dispersion: %d unique of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(6)
	const mu, sigma, n = 5.0, 2.0, 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(mu, sigma)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-mu) > 0.05 {
		t.Errorf("normal mean %v want %v", mean, mu)
	}
	if math.Abs(variance-sigma*sigma) > 0.2 {
		t.Errorf("normal variance %v want %v", variance, sigma*sigma)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(8)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("lognormal sample not positive: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(9)
	const rate, n = 0.5, 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.05 {
		t.Errorf("exponential mean %v want %v", mean, 1/rate)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(10)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2, 1.5)
		if v < 2 {
			t.Fatalf("pareto sample below scale: %v", v)
		}
	}
}

func TestBoundedParetoCapped(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1, 0.5, 100)
		if v < 1 || v > 100 {
			t.Fatalf("bounded pareto out of range: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(12)
	for _, lambda := range []float64{0.5, 3, 10, 50} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.1*lambda+0.05 {
			t.Errorf("poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(13)
	if r.Poisson(-1) != 0 {
		t.Fatal("negative lambda should yield 0")
	}
	for i := 0; i < 1000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("negative poisson sample")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(14)
	err := quick.Check(func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(15)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal(0, 1)
	}
}

func TestSubstreamDeterminism(t *testing.T) {
	a := Substream(42, 7)
	b := Substream(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) must yield identical sequences")
		}
	}
}

func TestSubstreamIndependence(t *testing.T) {
	// Distinct stream indices (including adjacent ones) must produce
	// different, decorrelated sequences; the derivation must not consume any
	// generator state (pure function of its inputs).
	seen := map[uint64]uint64{}
	for stream := uint64(0); stream < 1000; stream++ {
		s := SubstreamSeed(99, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide on seed %#x", prev, stream, s)
		}
		seen[s] = stream
	}
	a, b := Substream(1, 0), Substream(1, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent substreams agree on %d of 64 draws", same)
	}
}

func TestSubstreamSeedPure(t *testing.T) {
	if SubstreamSeed(5, 3) != SubstreamSeed(5, 3) {
		t.Fatal("SubstreamSeed must be a pure function")
	}
	if SubstreamSeed(5, 3) == SubstreamSeed(5, 4) || SubstreamSeed(5, 3) == SubstreamSeed(6, 3) {
		t.Fatal("SubstreamSeed must separate seeds and streams")
	}
}
