// Package rng provides a deterministic pseudo-random number generator and a
// collection of probability distributions used throughout the simulator.
//
// The generator is xoshiro256**, seeded through SplitMix64 so that any 64-bit
// seed (including 0) yields a well-mixed state. Determinism matters here:
// every experiment in the repository is reproducible bit-for-bit from its
// seed, which is how we make microsecond-scale scheduling experiments stable
// on a managed runtime.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; create one stream per simulated entity instead (see Split).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child stream from the current state. The
// parent advances, so successive Split calls return distinct streams.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// SubstreamSeed deterministically derives the seed of substream `stream`
// within the family identified by seed. Unlike Split, the derivation is a
// pure function of (seed, stream) — no generator state is consumed — which
// is what parallel shards need: shard i always draws from the same stream
// regardless of how many workers execute the shards or in what order. The
// stream index is folded in with the golden-ratio increment and finalized
// with the SplitMix64 mixer, so adjacent indices yield decorrelated states.
func SubstreamSeed(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream returns a generator for substream `stream` of the family
// identified by seed. See SubstreamSeed for the determinism contract.
func Substream(seed, stream uint64) *Rand {
	return New(SubstreamSeed(seed, stream))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		threshold := (-un) % un
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Int63n returns a uniform sample in [0, n) for 64-bit ranges.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int64(hi)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a sample from N(mu, sigma^2) using the Box-Muller transform.
func (r *Rand) Normal(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns a sample from Exp(rate). The mean is 1/rate.
func (r *Rand) Exponential(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Pareto returns a sample from a Pareto distribution with scale xm > 0 and
// shape alpha > 0. Heavy tails (alpha <= 2) model rare latency spikes.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// BoundedPareto returns a Pareto(xm, alpha) sample truncated to [xm, max].
func (r *Rand) BoundedPareto(xm, alpha, max float64) float64 {
	v := r.Pareto(xm, alpha)
	if v > max {
		return max
	}
	return v
}

// Poisson returns a sample from Poisson(lambda) using Knuth's method for
// small lambda and a normal approximation above 30.
func (r *Rand) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := r.Normal(lambda, math.Sqrt(lambda))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
