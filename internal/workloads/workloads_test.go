package workloads

import (
	"math"
	"testing"

	"concordia/internal/sim"
)

func TestKindString(t *testing.T) {
	names := map[Kind]string{None: "isolated", Redis: "redis", Nginx: "nginx",
		TPCC: "tpcc", MLPerf: "mlperf", Mix: "mix", Kind(99): "unknown"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q want %q", int(k), got, want)
		}
	}
}

func TestProfileOf(t *testing.T) {
	for _, k := range MixMembers {
		p, ok := ProfileOf(k)
		if !ok {
			t.Fatalf("no profile for %v", k)
		}
		if p.IdealRatePerCore <= 0 || p.CacheIntensity <= 0 || p.CacheIntensity > 1 {
			t.Fatalf("degenerate profile %+v", p)
		}
	}
	if _, ok := ProfileOf(Mix); ok {
		t.Fatal("Mix should not have a single profile")
	}
	if _, ok := ProfileOf(None); ok {
		t.Fatal("None should not have a profile")
	}
}

// Fig 8 calibration: at low disruption, achieved/ideal efficiency per
// workload matches the paper's reported percentages.
func TestEfficiencyMatchesFig8(t *testing.T) {
	want := map[Kind]float64{Redis: 0.766, Nginx: 0.822, TPCC: 0.72, MLPerf: 0.78}
	for k, eff := range want {
		p, _ := ProfileOf(k)
		got := p.Throughput(1, 0) / p.Ideal(1, 1)
		if math.Abs(got-eff) > 0.02 {
			t.Errorf("%v efficiency %.3f want %.3f", k, got, eff)
		}
	}
}

func TestThroughputScalesWithCoreSeconds(t *testing.T) {
	p, _ := ProfileOf(Redis)
	if p.Throughput(2, 0.1) != 2*p.Throughput(1, 0.1) {
		t.Fatal("throughput not linear in core-seconds")
	}
	if p.Throughput(0, 0.1) != 0 || p.Throughput(-1, 0) != 0 {
		t.Fatal("non-positive core-seconds must yield zero")
	}
}

func TestDisruptionReducesThroughput(t *testing.T) {
	for _, k := range MixMembers {
		p, _ := ProfileOf(k)
		smooth := p.Throughput(1, 0)
		chopped := p.Throughput(1, 0.8)
		if chopped >= smooth {
			t.Errorf("%v: disruption did not reduce throughput", k)
		}
		if chopped <= 0 {
			t.Errorf("%v: throughput floor violated", k)
		}
	}
}

func TestDisruptionIndex(t *testing.T) {
	if Disruption(0) != 0 {
		t.Fatal("zero preemptions must mean zero disruption")
	}
	prev := -1.0
	for rate := 0.0; rate <= 500; rate += 25 {
		d := Disruption(rate)
		if d < 0 || d > 1 {
			t.Fatalf("disruption %v out of [0,1]", d)
		}
		if d < prev {
			t.Fatal("disruption not monotone")
		}
		prev = d
	}
	if Disruption(1000) < 0.99 {
		t.Fatal("extreme preemption rates must saturate")
	}
}

func TestScheduleConstantKinds(t *testing.T) {
	s := NewSchedule(Redis, 10*sim.Second, 1)
	for _, at := range []sim.Time{0, sim.Second, 9 * sim.Second} {
		a := s.ActiveAt(at)
		if len(a) != 1 || a[0] != Redis {
			t.Fatalf("redis schedule at %v = %v", at, a)
		}
	}
	if s.InterferenceAt(0) <= 0 {
		t.Fatal("active redis must interfere")
	}
	n := NewSchedule(None, 10*sim.Second, 1)
	if len(n.ActiveAt(sim.Second)) != 0 || n.InterferenceAt(sim.Second) != 0 {
		t.Fatal("isolated schedule must be empty")
	}
}

func TestMixToggles(t *testing.T) {
	horizon := 300 * sim.Second
	s := NewSchedule(Mix, horizon, 7)
	// Sample the active-set size over time; it must change (workloads turn
	// on and off) and every member must appear at some point.
	seen := map[Kind]bool{}
	sizes := map[int]bool{}
	for at := sim.Time(0); at < horizon; at += 500 * sim.Millisecond {
		active := s.ActiveAt(at)
		sizes[len(active)] = true
		for _, k := range active {
			seen[k] = true
		}
	}
	if len(sizes) < 2 {
		t.Fatal("mix schedule never changed its active set size")
	}
	for _, k := range MixMembers {
		if !seen[k] {
			t.Errorf("mix never activated %v", k)
		}
	}
}

func TestMixDeterminism(t *testing.T) {
	a := NewSchedule(Mix, 100*sim.Second, 42)
	b := NewSchedule(Mix, 100*sim.Second, 42)
	for at := sim.Time(0); at < 100*sim.Second; at += sim.Second {
		x, y := a.ActiveAt(at), b.ActiveAt(at)
		if len(x) != len(y) {
			t.Fatalf("mix schedules diverge at %v", at)
		}
	}
}

func TestInterferenceCombination(t *testing.T) {
	s := NewSchedule(Mix, 600*sim.Second, 3)
	for at := sim.Time(0); at < 600*sim.Second; at += sim.Second {
		v := s.InterferenceAt(at)
		if v < 0 || v > 1 {
			t.Fatalf("interference %v out of range at %v", v, at)
		}
		if len(s.ActiveAt(at)) == 0 && v != 0 {
			t.Fatalf("interference %v with empty active set", v)
		}
	}
}

func TestInterferenceDominatedByStrongest(t *testing.T) {
	redis := NewSchedule(Redis, sim.Second, 1).InterferenceAt(0)
	mlperf := NewSchedule(MLPerf, sim.Second, 1).InterferenceAt(0)
	if redis <= mlperf {
		t.Fatal("redis must interfere more than mlperf")
	}
}

func BenchmarkInterferenceAt(b *testing.B) {
	s := NewSchedule(Mix, 600*sim.Second, 1)
	for i := 0; i < b.N; i++ {
		_ = s.InterferenceAt(sim.Time(i%600) * sim.Second)
	}
}

func TestSpans(t *testing.T) {
	// Nil schedule and None produce no spans; a concrete kind covers the
	// whole horizon as one span.
	var nilSched *Schedule
	if got := nilSched.Spans(sim.Second); got != nil {
		t.Fatalf("nil schedule spans = %v", got)
	}
	if got := NewSchedule(None, 10*sim.Second, 1).Spans(sim.Second); got != nil {
		t.Fatalf("None spans = %v", got)
	}
	redis := NewSchedule(Redis, 10*sim.Second, 1).Spans(3 * sim.Second)
	if len(redis) != 1 || redis[0].Kind != Redis || redis[0].From != 0 || redis[0].To != 3*sim.Second {
		t.Fatalf("Redis spans = %v", redis)
	}

	// Mix: spans must agree with ActiveAt at every probe point, be clamped
	// to the horizon, and be maximal (no two adjacent spans of one kind).
	horizon := 200 * sim.Second
	s := NewSchedule(Mix, horizon, 7)
	until := 150 * sim.Second
	spans := s.Spans(until)
	if len(spans) == 0 {
		t.Fatal("mix produced no spans")
	}
	covered := func(k Kind, at sim.Time) bool {
		for _, sp := range spans {
			if sp.Kind == k && at >= sp.From && at < sp.To {
				return true
			}
		}
		return false
	}
	for _, sp := range spans {
		if sp.To > until || sp.From < 0 || sp.From >= sp.To {
			t.Fatalf("span out of range: %+v", sp)
		}
	}
	for at := sim.Time(sim.Second / 2); at < until; at += sim.Second {
		active := map[Kind]bool{}
		for _, k := range s.ActiveAt(at) {
			active[k] = true
		}
		for _, k := range MixMembers {
			if active[k] != covered(k, at) {
				t.Fatalf("at %v: ActiveAt says %v active=%v, spans say %v", at, k, active[k], covered(k, at))
			}
		}
	}
	// Maximality: per kind, consecutive spans must not touch.
	last := map[Kind]sim.Time{}
	for _, sp := range spans {
		if prev, ok := last[sp.Kind]; ok && sp.From <= prev {
			t.Fatalf("non-maximal or unordered spans for %v: from %v after end %v", sp.Kind, sp.From, prev)
		}
		last[sp.Kind] = sp.To
	}
}
