// Package workloads models the best-effort applications the paper collocates
// with the vRAN pool: Redis (content caching), Nginx (HTTP serving), a
// TPCC/MySQL OLTP workload, MLPerf ResNet50 training, and the "Mix" that
// toggles them at random 10–70 s intervals.
//
// A collocated workload matters to the reproduction in exactly two ways:
//
//  1. It converts granted best-effort core-time into throughput — with an
//     efficiency below 1 because the grants are preempted, arrive on cold
//     caches, and share the LLC with the RAN (the reason Fig 8b–d land at
//     72–82 % of the no-vRAN ideal rather than at the reclaim percentage).
//  2. It exerts cache pressure on the RAN (the interference index consumed
//     by the cost and platform models).
package workloads

import (
	"math"

	"concordia/internal/rng"
	"concordia/internal/sim"
)

// Kind identifies a workload model.
type Kind int

// The collocated workloads evaluated in §6.
const (
	None Kind = iota
	Redis
	Nginx
	TPCC
	MLPerf
	Mix
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case None:
		return "isolated"
	case Redis:
		return "redis"
	case Nginx:
		return "nginx"
	case TPCC:
		return "tpcc"
	case MLPerf:
		return "mlperf"
	case Mix:
		return "mix"
	default:
		return "unknown"
	}
}

// Profile is the static description of one workload.
type Profile struct {
	Kind Kind
	// CacheIntensity is the interference index the workload exerts on the
	// RAN while it runs (0..1). Redis/TPCC hammer the memory hierarchy;
	// MLPerf is compute-bound with a streaming working set.
	CacheIntensity float64
	// IdealRatePerCore is the saturated throughput per dedicated core per
	// second (the no-vRAN reference of Fig 8b–d), in workload-native ops.
	IdealRatePerCore float64
	// Sensitivity converts preemption disruption into throughput loss:
	// transactional workloads (TPCC) suffer most from losing cores
	// mid-transaction; stateless serving (Nginx) least.
	Sensitivity float64
	// Unit names the throughput unit for reports.
	Unit string
}

// Profiles for the paper's workloads. Throughput magnitudes follow Fig 8:
// millions of Redis GET/s, tens of thousands of HTTP req/s, thousands of
// TPCC transactions/s.
var profiles = map[Kind]Profile{
	Redis:  {Kind: Redis, CacheIntensity: 0.95, IdealRatePerCore: 700_000, Sensitivity: 0.234, Unit: "ops/s"},
	Nginx:  {Kind: Nginx, CacheIntensity: 0.75, IdealRatePerCore: 5_000, Sensitivity: 0.178, Unit: "req/s"},
	TPCC:   {Kind: TPCC, CacheIntensity: 0.90, IdealRatePerCore: 250, Sensitivity: 0.280, Unit: "tx/s"},
	MLPerf: {Kind: MLPerf, CacheIntensity: 0.60, IdealRatePerCore: 110, Sensitivity: 0.220, Unit: "samples/s"},
}

// ProfileOf returns the profile of a concrete workload kind. Mix and None
// have no single profile; ok is false for them.
func ProfileOf(k Kind) (Profile, bool) {
	p, ok := profiles[k]
	return p, ok
}

// Disruption quantifies how broken-up the best-effort grants are: the rate
// of preemption events per granted core-second, normalized against the
// regime where grants become useless. The vRAN reclaiming cores in 20 µs
// slices would disrupt totally; hundreds-of-ms grants barely at all.
func Disruption(preemptionsPerCoreSecond float64) float64 {
	const saturation = 120 // preemptions per core-second that erase ~all value
	d := preemptionsPerCoreSecond / saturation
	return 1 - math.Exp(-d)
}

// Throughput converts granted core-seconds into workload ops given the
// disruption index (0..1).
func (p Profile) Throughput(coreSeconds, disruption float64) float64 {
	if coreSeconds <= 0 {
		return 0
	}
	eff := 1 - p.Sensitivity - (0.35-p.Sensitivity/2)*disruption
	if eff < 0.05 {
		eff = 0.05
	}
	return p.IdealRatePerCore * coreSeconds * eff
}

// Ideal returns the no-vRAN reference throughput for dedicated cores.
func (p Profile) Ideal(cores int, seconds float64) float64 {
	return p.IdealRatePerCore * float64(cores) * seconds
}

// Schedule exposes the time-varying active set of a collocation scenario.
type Schedule struct {
	kind     Kind
	segments []segment // for Mix: precomputed on/off timeline per workload
}

type segment struct {
	until  sim.Time
	active []Kind
}

// MixMembers is the workload set the Mix scenario toggles.
var MixMembers = []Kind{Redis, Nginx, TPCC, MLPerf}

// NewSchedule builds the collocation schedule for a scenario lasting up to
// horizon. For concrete kinds the workload is always on; for Mix, members
// switch on and off at random 10–70 s intervals (§6's mixed workload).
func NewSchedule(k Kind, horizon sim.Time, seed uint64) *Schedule {
	s := &Schedule{kind: k}
	if k != Mix {
		return s
	}
	r := rng.New(seed)
	// Per-member on/off timelines; merge into segments at 1 s granularity.
	type state struct {
		on       bool
		flipNext sim.Time
	}
	states := make([]state, len(MixMembers))
	anyOn := false
	for i := range states {
		states[i].on = r.Bool(0.5)
		anyOn = anyOn || states[i].on
		states[i].flipNext = sim.Time(r.Uniform(10, 70) * float64(sim.Second))
	}
	if !anyOn {
		// The mixed scenario always starts with something running.
		states[r.Intn(len(states))].on = true
	}
	const step = sim.Second
	for t := sim.Time(0); t <= horizon; t += step {
		var active []Kind
		for i := range states {
			if t >= states[i].flipNext {
				states[i].on = !states[i].on
				states[i].flipNext = t + sim.Time(r.Uniform(10, 70)*float64(sim.Second))
			}
			if states[i].on {
				active = append(active, MixMembers[i])
			}
		}
		s.segments = append(s.segments, segment{until: t + step, active: active})
	}
	return s
}

// ActiveAt returns the workloads running at time t.
func (s *Schedule) ActiveAt(t sim.Time) []Kind {
	switch s.kind {
	case None:
		return nil
	case Mix:
		// Binary search over segments.
		lo, hi := 0, len(s.segments)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if s.segments[mid].until <= t {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(s.segments) {
			return s.segments[lo].active
		}
		return nil
	default:
		return []Kind{s.kind}
	}
}

// Span is one interval during which a workload was active, used by the
// telemetry exporters to render the collocation timeline.
type Span struct {
	Kind     Kind
	From, To sim.Time
}

// Spans returns the activity intervals of every workload over [0, until),
// ordered by workload (MixMembers order for Mix) and then by start time.
// Concrete kinds yield one full-horizon span; Mix merges its per-second
// segments into maximal on-intervals per member.
func (s *Schedule) Spans(until sim.Time) []Span {
	if s == nil || s.kind == None || until <= 0 {
		return nil
	}
	if s.kind != Mix {
		return []Span{{Kind: s.kind, From: 0, To: until}}
	}
	var out []Span
	for _, k := range MixMembers {
		open := -1 // index into out of the span being extended
		for _, seg := range s.segments {
			if seg.until <= 0 {
				continue
			}
			from := seg.until - sim.Second
			if from >= until {
				break
			}
			active := false
			for _, a := range seg.active {
				if a == k {
					active = true
					break
				}
			}
			switch {
			case active && open < 0:
				out = append(out, Span{Kind: k, From: from, To: seg.until})
				open = len(out) - 1
			case active:
				out[open].To = seg.until
			default:
				open = -1
			}
		}
		if open >= 0 && out[open].To > until {
			out[open].To = until
		}
	}
	return out
}

// InterferenceAt returns the combined cache-pressure index at time t:
// the strongest active workload plus diminishing contributions from the
// rest, clamped to 1.
func (s *Schedule) InterferenceAt(t sim.Time) float64 {
	active := s.ActiveAt(t)
	if len(active) == 0 {
		return 0
	}
	var best, rest float64
	for _, k := range active {
		p := profiles[k]
		if p.CacheIntensity > best {
			rest += best
			best = p.CacheIntensity
		} else {
			rest += p.CacheIntensity
		}
	}
	v := best + 0.15*rest
	if v > 1 {
		v = 1
	}
	return v
}

// CombineInterference merges two independent cache-pressure indices in
// [0, 1]: each source degrades the headroom the other left behind
// (a + b·(1−a)), so the result stays in range and combining with zero is an
// exact no-op. Used to overlay injected interference bursts on the workload
// schedule's baseline.
func CombineInterference(a, b float64) float64 {
	if b <= 0 {
		return a
	}
	if a <= 0 {
		a = 0
	}
	v := a + b*(1-a)
	if v > 1 {
		return 1
	}
	return v
}
