GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

# Full test suite. The experiment harness re-runs every figure at reduced
# scale and the root package sweeps every experiment twice for worker
# determinism, so expect ~10 minutes on one core.
test:
	$(GO) test -timeout 20m ./...

# check is the pre-merge gate: vet, the full suite, and the race detector
# over every parallel code path. A blanket `go test -race ./...` would blow
# the per-package timeout on small machines (the race detector slows the
# experiment harness severalfold), so race coverage is split: all packages
# in -short mode, then full runs of the packages that own concurrency
# (worker pool, RNG substreams, parallel PHY decode), then a targeted slice
# of the worker-determinism sweep at the module root.
check: build
	$(GO) vet ./...
	$(GO) test -timeout 20m ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/parallel ./internal/rng ./internal/phy ./internal/costmodel
	$(GO) test -race -run 'TestExperimentsWorkerDeterminism/(fig6|fig7|fig12|fig15b)' -timeout 30m .

# One regeneration pass per paper table/figure, with timing.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...
