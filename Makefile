GO ?= go

.PHONY: build test lint tools check bench bench-diff poolcheck

build:
	$(GO) build ./...

# Full test suite. The experiment harness re-runs every figure at reduced
# scale and the root package sweeps every experiment twice for worker
# determinism, so expect ~10 minutes on one core.
test:
	$(GO) test -timeout 20m ./...

# lint is the static gate: go vet, then the determinism + memory-discipline
# suite (DESIGN.md §5b, §5g — walltime, rngdiscipline, goroutinescope,
# maporder, floatsum, poolescape, scratchalias, handleliveness) via the
# cmd/concordialint vettool, then staticcheck and govulncheck when they are
# installed (run `make tools` once, network required, to install the pinned
# versions from tools/go.mod). The third-party linters are gated on
# availability so the hermetic build environment still lints.
lint: build
	$(GO) vet ./...
	$(GO) run ./cmd/concordialint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; run 'make tools' to enable (pinned in tools/go.mod)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; run 'make tools' to enable (pinned in tools/go.mod)"; \
	fi

# tools installs the pinned third-party linters. tools/ is a nested module so
# the pins never leak into the main module's (empty) dependency set; this
# target needs network access, which the default build environment lacks.
tools:
	cd tools && $(GO) mod tidy && \
		$(GO) install honnef.co/go/tools/cmd/staticcheck && \
		$(GO) install golang.org/x/vuln/cmd/govulncheck

# check is the pre-merge gate: the static gate, the full suite, and the race
# detector over every parallel code path. A blanket `go test -race ./...`
# would blow the per-package timeout on small machines (the race detector
# slows the experiment harness severalfold), so race coverage is split: all
# packages in -short mode, then full runs of the packages that own
# concurrency (worker pool, RNG substreams, parallel PHY decode), then a
# targeted slice of the worker-determinism sweep at the module root.
check: lint
	$(GO) test -timeout 20m ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/parallel ./internal/rng ./internal/phy ./internal/costmodel ./internal/pool ./internal/sim
	$(GO) test -race -run 'TestExperimentsWorkerDeterminism/(fig6|fig7|fig12|fig15b)' -timeout 30m .

# poolcheck is the dynamic memory-discipline gate (DESIGN.md §5g): rebuild
# the freelist owners with the sanitizer compiled in (generation side tables,
# poison-on-free, slab canaries), run their full suites, then drive the
# sanitized pool through a slice of the determinism sweep — the chaos and
# predcal experiments stress recycling hardest (fault retries, abandoned
# DAGs, storm yields). Any use-after-recycle panics with the owning release
# seq instead of corrupting results.
poolcheck:
	$(GO) vet -tags poolcheck ./internal/pool ./internal/sim ./internal/ran
	$(GO) test -tags poolcheck -timeout 20m ./internal/pool ./internal/sim ./internal/ran
	$(GO) test -tags poolcheck -timeout 30m -run 'TestExperimentsWorkerDeterminism/(fig4a|fig4b|chaos|predcal)' .

# One regeneration pass per paper table/figure, with timing and allocation
# stats, distilled into BENCH_pool.json (schema in EXPERIMENTS.md) so the
# perf trajectory is tracked commit over commit. benchjson echoes the stream
# through, fails on FAIL lines, and refuses to write an empty trajectory.
# The committed trajectory is stashed first so bench-diff can gate against it.
bench:
	@cp BENCH_pool.json BENCH_prev.json 2>/dev/null || true
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -timeout 30m ./... | $(GO) run ./cmd/benchjson -o BENCH_pool.json

# Alloc-regression gate (DESIGN.md §5f): compare the fresh trajectory against
# the one committed before `make bench` ran; any benchmark whose allocs/op
# grew more than 10% fails the target. ns/op deltas are printed but advisory
# (shared CI runners make wall time too noisy to gate on).
bench-diff:
	@test -f BENCH_prev.json || { echo "bench-diff: run 'make bench' first (no BENCH_prev.json)"; exit 2; }
	$(GO) run ./cmd/benchjson -diff BENCH_prev.json BENCH_pool.json
