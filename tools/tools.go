//go:build tools

// Package tools records the repository's third-party tooling as blank
// imports so their versions are pinned by this nested module's go.mod (the
// standard "tools.go" pattern). Nothing here is ever compiled into the
// simulator; the build tag keeps the imports out of every real build.
//
//   - golang.org/x/tools: the go/analysis framework that
//     internal/lint/analysis mirrors; pinning it documents exactly which
//     upstream API the shim tracks for an eventual one-line-import port.
//   - honnef.co/go/tools: staticcheck (configured by ../staticcheck.conf).
//   - golang.org/x/vuln: govulncheck.
package tools

import (
	_ "golang.org/x/tools/go/analysis"
	_ "golang.org/x/vuln/cmd/govulncheck"
	_ "honnef.co/go/tools/cmd/staticcheck"
)
