// Nested module pinning third-party developer tooling. It is deliberately
// separate from the main module so the (empty) production dependency set
// stays empty and `go build ./...` never needs the network. `make tools`
// materializes these pins (go mod tidy + go install); the versions below are
// the ones the internal/lint/analysis shim and staticcheck.conf target.
module concordia/tools

go 1.22

require (
	golang.org/x/tools v0.24.0
	golang.org/x/vuln v1.1.3
	honnef.co/go/tools v0.5.1
)
