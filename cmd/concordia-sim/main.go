// Command concordia-sim runs a single vRAN collocation scenario and prints
// the full report: reliability, latency tails, reclaimed CPU, scheduling
// events, and collocated workload throughput.
//
// Usage:
//
//	concordia-sim -config 20mhz -cells 7 -cores 8 -sched concordia \
//	              -workload redis -load 0.25 -duration 60 -seed 42
//
// With -trace the run's event timeline is exported as Chrome trace-event
// JSON (open in ui.perfetto.dev); -metrics exports the per-slot metrics time
// series as CSV. Both are byte-identical for a fixed seed regardless of
// -workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"concordia"
	"concordia/internal/analysis"
	"concordia/internal/traffic"
	"concordia/internal/workloads"
)

// writeExport creates path and streams one telemetry export into it,
// reporting write and close errors.
func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	config := flag.String("config", "20mhz", "cell class: 20mhz, 100mhz or lte")
	cells := flag.Int("cells", 7, "number of cells")
	cores := flag.Int("cores", 8, "vRAN pool cores")
	sched := flag.String("sched", "concordia", "scheduler: concordia, flexran, shenango, utilization")
	workload := flag.String("workload", "isolated", "collocated workload: isolated, redis, nginx, tpcc, mlperf, mix")
	load := flag.Float64("load", 0.5, "cell traffic load (0,1]")
	duration := flag.Float64("duration", 60, "simulated seconds")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	useAccel := flag.Bool("accel", false, "offload LDPC to the modeled FPGA")
	accelDevices := flag.Int("accel-devices", 0, "accelerator cards in the fleet (0/1 = single default FPGA; needs -accel)")
	accelVFs := flag.Int("accel-vfs", 0, "SR-IOV virtual functions per accelerator card (0 = one)")
	accelQueue := flag.Int("accel-queue", 0, "per-VF per-queue-group admission depth (0 = unbounded)")
	offloadBatch := flag.Int("offload-batch", 0, "coalesce up to N same-kind offloads per DMA transfer (0/1 = per-task)")
	includeMAC := flag.Bool("mac", false, "multiplex the MAC-layer extension DAGs (§7)")
	replayPath := flag.String("replay", "", "CSV traffic trace (tracegen format) to replay for both directions")
	traceScale := flag.Float64("trace-scale", 1, "volume multiplier for replayed traffic traces")
	minCores := flag.Bool("min-cores", false, "search for the minimum core count first")
	workers := flag.Int("workers", 0, "worker goroutines for parallel setup work (0 = NumCPU, 1 = serial; results are identical)")
	traceOut := flag.String("trace", "", "write the run's Chrome trace-event JSON (Perfetto) to this file")
	metricsOut := flag.String("metrics", "", "write the run's metrics time series CSV to this file")
	perCell := flag.Bool("per-cell", false, "print the per-cell deadline-miss and queueing-delay breakdown")
	faultsSpec := flag.String("faults", "", `deterministic fault injection spec, e.g. "lane=0.05,stuck=0.01,burst=5" or "all" (see internal/faults)`)
	dropLate := flag.Bool("drop-late", false, "abandon DAGs whose deadline has passed (counted as dropped misses)")
	eventsOut := flag.String("events", "", "write the run's raw telemetry events CSV to this file (feed to cmd/autopsy)")
	sloOut := flag.String("slo", "", "enable the streaming SLO plane and write its window rows CSV to this file")
	sloReport := flag.String("slo-report", "", "enable the streaming SLO plane and write its markdown health report to this file")
	sloWindow := flag.Float64("slo-window", 0, "SLO tumbling sub-window width in ms (0 = default 20)")
	sloBurn := flag.Float64("slo-burn", 0, "SLO burn-rate alert threshold (0 = default 14.4)")
	autopsyOut := flag.String("autopsy", "", "write the run's markdown autopsy report (miss attribution + calibration) to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	// Profiles go to their own files and errors to stderr, so profiling can
	// never perturb the deterministic report bytes on stdout.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		f.Close()
	}()

	var cfg concordia.Config
	switch *config {
	case "20mhz":
		cfg = concordia.Scenario20MHz(*cells, *cores)
	case "100mhz":
		cfg = concordia.Scenario100MHz(*cells, *cores)
	case "lte":
		cfg = concordia.ScenarioLTE(*cells, *cores)
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(2)
	}
	cfg.Scheduler = concordia.SchedulerKind(*sched)
	cfg.Load = *load
	cfg.Seed = *seed
	cfg.UseAccel = *useAccel
	cfg.AccelDevices = *accelDevices
	cfg.AccelVFs = *accelVFs
	cfg.AccelQueueDepth = *accelQueue
	cfg.OffloadBatch = *offloadBatch
	cfg.Workers = *workers
	wl, ok := map[string]concordia.WorkloadKind{
		"isolated": concordia.Isolated, "redis": concordia.Redis,
		"nginx": concordia.Nginx, "tpcc": concordia.TPCC,
		"mlperf": concordia.MLPerf, "mix": concordia.Mix,
	}[*workload]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(2)
	}
	cfg.Workload = wl
	cfg.IncludeMAC = *includeMAC
	cfg.DropLateDAGs = *dropLate
	if *faultsSpec != "" {
		fc, err := concordia.ParseFaults(*faultsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		if fc.Enabled() {
			cfg.Faults = &fc
		}
	}
	// -per-cell needs the instrumented path too: queueing delays are observed
	// per dispatch only when telemetry is on. The SLO plane works without
	// telemetry, but attaching the recorder lets its window/alert events land
	// in the trace exports as well.
	if *traceOut != "" || *metricsOut != "" || *perCell || *eventsOut != "" || *autopsyOut != "" ||
		*sloOut != "" || *sloReport != "" {
		cfg.Telemetry = concordia.NewTelemetry(concordia.TelemetryOptions{})
	}
	if *sloOut != "" || *sloReport != "" {
		cfg.SLO = &concordia.SLOOptions{
			Window:        concordia.Milliseconds(*sloWindow),
			BurnThreshold: *sloBurn,
		}
	}
	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		tr, err := traffic.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		cfg.ULTrace, cfg.DLTrace = tr, tr
		cfg.TraceScale = *traceScale
	}

	if *minCores {
		n, err := concordia.MinimumCores(cfg, 16, 0.9999, concordia.Seconds(10))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("minimum cores: %d\n", n)
		cfg.PoolCores = n
	}

	sys, err := concordia.NewSystem(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	rep := sys.Run(concordia.Seconds(*duration))
	fmt.Print(rep)
	if *perCell {
		fmt.Print(rep.PerCellString())
	}
	if *traceOut != "" {
		if err := writeExport(*traceOut, sys.WriteChromeTrace); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		if err := writeExport(*metricsOut, sys.WriteMetricsCSV); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *eventsOut != "" {
		if err := writeExport(*eventsOut, sys.Telemetry().Trace.WriteEventsCSV); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *sloOut != "" {
		if err := writeExport(*sloOut, sys.WriteSLOCSV); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *sloReport != "" {
		if err := writeExport(*sloReport, sys.WriteSLOReport); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *autopsyOut != "" {
		a := analysis.Analyze(sys.Telemetry().Trace.Events(), analysis.Options{
			PoolCores: cfg.PoolCores,
			Deadline:  cfg.Deadline,
		})
		if err := writeExport(*autopsyOut, a.WriteReport); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if wl != concordia.Isolated && wl != concordia.Mix {
		p, _ := workloads.ProfileOf(wl)
		achieved := rep.WorkloadThroughput(wl)
		ideal := p.Ideal(cfg.PoolCores, *duration)
		fmt.Printf("workload        %s: %.0f %s (%.1f%% of no-vRAN ideal)\n",
			wl, achieved / *duration, p.Unit, 100*achieved/ideal)
	}
}
