// Command tracegen emits multi-cell per-TTI traffic traces as CSV
// (tti,cell0,cell1,... in bytes), using the §2.2-calibrated generator.
//
// Usage:
//
//	tracegen -cells 3 -slots 10000 -load 0.1 -peak 5120 -seed 7 > trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"concordia/internal/traffic"
)

func main() {
	cells := flag.Int("cells", 3, "number of cells")
	slots := flag.Int("slots", 10000, "TTIs to generate")
	load := flag.Float64("load", 0.1, "cell traffic load (0,1]")
	peak := flag.Int("peak", 5120, "per-cell per-slot peak bytes")
	seed := flag.Uint64("seed", 7, "deterministic seed")
	stats := flag.Bool("stats", false, "print summary statistics instead of the trace")
	flag.Parse()

	tr, err := traffic.GenerateTrace(traffic.Config{
		Cells: *cells, Load: *load, PeakSlotBytes: *peak, Seed: *seed}, *slots)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if *stats {
		var single float64
		for c := 0; c < *cells; c++ {
			single += tr.IdleFraction(c)
		}
		fmt.Printf("cells            %d\n", *cells)
		fmt.Printf("slots            %d\n", *slots)
		fmt.Printf("single idle      %.1f%%\n", 100*single/float64(*cells))
		fmt.Printf("aggregate idle   %.1f%%\n", 100*tr.IdleFraction(-1))
		return
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprint(w, "tti")
	for c := 0; c < *cells; c++ {
		fmt.Fprintf(w, ",cell%d", c)
	}
	fmt.Fprintln(w)
	for t := 0; t < *slots; t++ {
		fmt.Fprint(w, t)
		for _, v := range tr.Volumes[t] {
			fmt.Fprintf(w, ",%d", v)
		}
		fmt.Fprintln(w)
	}
	// A buffered writer swallows write errors until Flush: a full disk or a
	// closed pipe must fail the command, not truncate the trace silently.
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
