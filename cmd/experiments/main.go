// Command experiments regenerates the paper's tables and figures on the
// simulated platform and prints them as text tables.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-list] [name ...]
//
// With no names, every experiment runs in order. Scale 1.0 runs
// full-quality durations; smaller values trade statistical depth for speed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"concordia/internal/experiments"
)

// captureTelemetry runs the canonical instrumented scenario and writes the
// requested exports (either path may be empty).
func captureTelemetry(o experiments.Options, tracePath, metricsPath string) error {
	open := func(path string) (*os.File, error) {
		if path == "" {
			return nil, nil
		}
		return os.Create(path)
	}
	tf, err := open(tracePath)
	if err != nil {
		return err
	}
	mf, err := open(metricsPath)
	if err != nil {
		return err
	}
	// *os.File nil-ness does not survive the interface conversion; keep the
	// io.Writer nil when no path was given.
	var tw, mw io.Writer
	if tf != nil {
		tw = tf
	}
	if mf != nil {
		mw = mf
	}
	if err := experiments.CaptureTelemetry(o, tw, mw); err != nil {
		return err
	}
	for _, f := range []*os.File{tf, mf} {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func main() {
	seed := flag.Uint64("seed", 42, "deterministic seed")
	scale := flag.Float64("scale", 0.25, "duration scale (1.0 = full experiment quality)")
	training := flag.Int("training", 0, "offline profiling TTIs (0 = default)")
	workers := flag.Int("workers", 0, "worker goroutines for experiment fan-out (0 = NumCPU, 1 = serial; output is identical)")
	list := flag.Bool("list", false, "list experiment names and exit")
	csvDir := flag.String("csv", "", "also write raw data series as <dir>/<name>.csv where supported")
	traceOut := flag.String("trace", "", "capture the canonical scenario's Chrome trace-event JSON (Perfetto) to this file and exit")
	metricsOut := flag.String("metrics", "", "capture the canonical scenario's metrics time-series CSV to this file and exit")
	faultsSpec := flag.String("faults", "", `run the chaos study with this fault spec ("sweep" for the per-class ladder) and exit`)
	autopsyOut := flag.String("autopsy", "", `run the canonical scenario (or, with -faults, a chaos run) through the analysis engine and write the markdown autopsy report to this file`)
	sloOut := flag.String("slo", "", "run the chaos testbed with the streaming SLO plane and write its window rows CSV to this file, then exit")
	sloReport := flag.String("slo-report", "", "run the chaos testbed with the streaming SLO plane and write its markdown health report to this file, then exit")
	sloWindow := flag.Float64("slo-window", 0, "SLO tumbling sub-window width in ms (0 = default 20)")
	sloBurn := flag.Float64("slo-burn", 0, "SLO burn-rate alert threshold (0 = default 14.4)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	flag.Parse()

	// Profiles go to their own files and errors to stderr, so profiling can
	// never perturb the deterministic tables on stdout.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
		}
		f.Close()
	}()

	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}
	o := experiments.Options{Seed: *seed, Scale: *scale, TrainingSlots: *training, Workers: *workers}
	if *autopsyOut != "" {
		spec := *faultsSpec
		if spec == "sweep" {
			fmt.Fprintln(os.Stderr, `error: -autopsy needs a concrete fault spec, not "sweep"`)
			os.Exit(2)
		}
		a, _, err := experiments.CaptureAutopsy(o, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		f, err := os.Create(*autopsyOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		err = a.WriteReport(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *sloOut != "" || *sloReport != "" {
		spec := *faultsSpec
		if spec == "sweep" {
			fmt.Fprintln(os.Stderr, `error: -slo needs a concrete fault spec, not "sweep"`)
			os.Exit(2)
		}
		open := func(path string) (*os.File, io.Writer, error) {
			if path == "" {
				return nil, nil, nil
			}
			f, err := os.Create(path)
			if err != nil {
				return nil, nil, err
			}
			return f, f, nil
		}
		cf, cw, err := open(*sloOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		rf, rw, err := open(*sloReport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		err = experiments.CaptureSLO(o, spec, *sloWindow, *sloBurn, cw, rw)
		for _, f := range []*os.File{cf, rf} {
			if f == nil {
				continue
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *traceOut != "" || *metricsOut != "" {
		if err := captureTelemetry(o, *traceOut, *metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if *faultsSpec != "" {
		res, err := experiments.RunChaos(o, *faultsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "chaos.csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			err = experiments.WriteCSV(res, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return
	}
	names := flag.Args()
	if len(names) == 0 && *csvDir == "" {
		// Full regeneration goes through RunAll so experiments fan out
		// across workers; the rendered output is identical to running each
		// name in order.
		if err := experiments.RunAll(o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}
	if len(names) == 0 {
		names = experiments.Names
	}
	for _, name := range names {
		if err := experiments.Run(name, o, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			err = experiments.RunCSV(name, o, f)
			f.Close()
			if err != nil {
				os.Remove(path) // experiment has no CSV form
			} else {
				fmt.Fprintf(os.Stderr, "wrote %s\n", path)
			}
		}
	}
}
