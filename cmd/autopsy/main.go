// Command autopsy explains deadline misses. It feeds a telemetry event
// trace — either captured earlier with `concordia-sim -events` or produced
// by running a scenario inline — through the deterministic analysis engine
// (internal/analysis) and renders the markdown autopsy report: per-DAG
// critical paths, miss-cause attribution (the per-cause counts partition the
// total miss count exactly), and the predictor calibration table.
//
// Usage:
//
//	autopsy -events trace_events.csv            # analyse a captured trace
//	autopsy -seed 42 -scale 0.5                 # run the canonical scenario inline
//	autopsy -faults "stuck=0.05" -csv out/      # chaos run + CSV exports
//
// Output bytes are deterministic: identical for a fixed seed at any -workers
// count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"concordia/internal/analysis"
	"concordia/internal/experiments"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}

func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	eventsPath := flag.String("events", "", "events CSV captured with `concordia-sim -events` (empty = run a scenario inline)")
	seed := flag.Uint64("seed", 42, "deterministic seed (inline scenario)")
	scale := flag.Float64("scale", 0.25, "duration scale (inline scenario)")
	training := flag.Int("training", 0, "offline profiling TTIs (0 = default)")
	workers := flag.Int("workers", 0, "worker goroutines for setup fan-out (0 = NumCPU; output is identical)")
	faultsSpec := flag.String("faults", "", "fault spec for an inline chaos run (empty = canonical collocation scenario)")
	poolCores := flag.Int("pool-cores", 0, "pool core count for attribution (0 = infer from the trace)")
	deadlineUs := flag.Float64("deadline-us", 0, "slot deadline in us for attribution (0 = infer from the trace)")
	reportOut := flag.String("report", "", "write the markdown report to this file (default stdout)")
	csvDir := flag.String("csv", "", "also write causes.csv, misses.csv and calibration.csv into this directory")
	flag.Parse()

	var a *analysis.Autopsy
	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			fail(err)
		}
		events, err := telemetry.ReadEventsCSV(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		a = analysis.Analyze(events, analysis.Options{
			PoolCores: *poolCores,
			Deadline:  sim.Time(*deadlineUs * 1000),
		})
	} else {
		o := experiments.Options{Seed: *seed, Scale: *scale, TrainingSlots: *training, Workers: *workers}
		var err error
		a, _, err = experiments.CaptureAutopsy(o, *faultsSpec)
		if err != nil {
			fail(err)
		}
	}

	if *reportOut != "" {
		if err := writeFile(*reportOut, a.WriteReport); err != nil {
			fail(err)
		}
	} else if err := a.WriteReport(os.Stdout); err != nil {
		fail(err)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		for _, exp := range []struct {
			name  string
			write func(io.Writer) error
		}{
			{"causes.csv", a.WriteCausesCSV},
			{"misses.csv", a.WriteMissesCSV},
			{"calibration.csv", a.WriteCalibrationCSV},
		} {
			if err := writeFile(filepath.Join(*csvDir, exp.name), exp.write); err != nil {
				fail(err)
			}
		}
	}
	if !a.PartitionHolds() {
		fmt.Fprintln(os.Stderr, "error: attribution partition invariant violated")
		os.Exit(1)
	}
}
