package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: concordia/internal/pool
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPoolSecond-8   	       1	 95012345 ns/op	 1234567 B/op	    8901 allocs/op
BenchmarkNilTelemetryEmit 	  100000	         1.798 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	concordia/internal/pool	0.5s
pkg: concordia/internal/phy
BenchmarkLDPCDecode-8   	      10	  1000000 ns/op	  64.00 MB/s
PASS
ok  	concordia/internal/phy	0.1s
`

func TestParseSample(t *testing.T) {
	var echo bytes.Buffer
	tr, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sample {
		t.Error("echo does not match input")
	}
	if tr.SchemaVersion != 1 || tr.GoOS != "linux" || tr.GoArch != "amd64" || !strings.Contains(tr.CPU, "Xeon") {
		t.Errorf("header: %+v", tr)
	}
	if len(tr.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(tr.Benchmarks))
	}
	b := tr.Benchmarks[0]
	if b.Package != "concordia/internal/pool" || b.Name != "BenchmarkPoolSecond-8" ||
		b.Iterations != 1 || b.NsPerOp != 95012345 {
		t.Errorf("row 0: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1234567 || b.AllocsPerOp == nil || *b.AllocsPerOp != 8901 {
		t.Errorf("row 0 memstats: %+v", b)
	}
	zero := tr.Benchmarks[1]
	if zero.AllocsPerOp == nil || *zero.AllocsPerOp != 0 || zero.NsPerOp != 1.798 {
		t.Errorf("zero-alloc row: %+v", zero)
	}
	mb := tr.Benchmarks[2]
	if mb.Package != "concordia/internal/phy" || mb.MBPerS == nil || *mb.MBPerS != 64 || mb.BytesPerOp != nil {
		t.Errorf("MB/s row: %+v", mb)
	}

	// The document must round-trip as valid JSON with the documented keys.
	buf, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["benchmarks"]; !ok {
		t.Errorf("missing benchmarks key: %s", buf)
	}
}

func TestParseRejectsFailure(t *testing.T) {
	in := "BenchmarkX-8 1 5 ns/op\nFAIL\nexit status 1\n"
	if _, err := parse(strings.NewReader(in), nil); err == nil {
		t.Error("FAIL stream accepted")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	// Status lines like "BenchmarkFoo   " (no fields yet) and malformed rows
	// must be skipped, not fatal.
	in := "BenchmarkFoo\nBenchmarkBar-8 notanint 5 ns/op\nBenchmarkOk-8 2 7 ns/op\nPASS\n"
	tr, err := parse(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Benchmarks) != 1 || tr.Benchmarks[0].Name != "BenchmarkOk-8" {
		t.Errorf("benchmarks: %+v", tr.Benchmarks)
	}
}
