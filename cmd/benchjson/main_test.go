package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: concordia/internal/pool
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPoolSecond-8   	       1	 95012345 ns/op	 1234567 B/op	    8901 allocs/op
BenchmarkNilTelemetryEmit 	  100000	         1.798 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	concordia/internal/pool	0.5s
pkg: concordia/internal/phy
BenchmarkLDPCDecode-8   	      10	  1000000 ns/op	  64.00 MB/s
PASS
ok  	concordia/internal/phy	0.1s
`

func TestParseSample(t *testing.T) {
	var echo bytes.Buffer
	tr, err := parse(strings.NewReader(sample), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sample {
		t.Error("echo does not match input")
	}
	if tr.SchemaVersion != 1 || tr.GoOS != "linux" || tr.GoArch != "amd64" || !strings.Contains(tr.CPU, "Xeon") {
		t.Errorf("header: %+v", tr)
	}
	if len(tr.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(tr.Benchmarks))
	}
	b := tr.Benchmarks[0]
	if b.Package != "concordia/internal/pool" || b.Name != "BenchmarkPoolSecond-8" ||
		b.Iterations != 1 || b.NsPerOp != 95012345 {
		t.Errorf("row 0: %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1234567 || b.AllocsPerOp == nil || *b.AllocsPerOp != 8901 {
		t.Errorf("row 0 memstats: %+v", b)
	}
	zero := tr.Benchmarks[1]
	if zero.AllocsPerOp == nil || *zero.AllocsPerOp != 0 || zero.NsPerOp != 1.798 {
		t.Errorf("zero-alloc row: %+v", zero)
	}
	mb := tr.Benchmarks[2]
	if mb.Package != "concordia/internal/phy" || mb.MBPerS == nil || *mb.MBPerS != 64 || mb.BytesPerOp != nil {
		t.Errorf("MB/s row: %+v", mb)
	}

	// The document must round-trip as valid JSON with the documented keys.
	buf, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["benchmarks"]; !ok {
		t.Errorf("missing benchmarks key: %s", buf)
	}
}

func TestParseRejectsFailure(t *testing.T) {
	in := "BenchmarkX-8 1 5 ns/op\nFAIL\nexit status 1\n"
	if _, err := parse(strings.NewReader(in), nil); err == nil {
		t.Error("FAIL stream accepted")
	}
}

func fp(v float64) *float64 { return &v }

func trWith(benches ...Benchmark) *Trajectory {
	return &Trajectory{SchemaVersion: 1, Benchmarks: benches}
}

func TestDiffPassesWithinTolerance(t *testing.T) {
	oldTr := trWith(
		Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: fp(1000)},
		Benchmark{Package: "p", Name: "BenchmarkZero-8", NsPerOp: 5, AllocsPerOp: fp(0)},
	)
	newTr := trWith(
		// +10% exactly is within tolerance (the gate is strictly greater).
		Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 150, AllocsPerOp: fp(1100)},
		Benchmark{Package: "p", Name: "BenchmarkZero-8", NsPerOp: 6, AllocsPerOp: fp(0)},
	)
	var buf bytes.Buffer
	if reg := diff(oldTr, newTr, &buf); len(reg) != 0 {
		t.Errorf("regressions: %v\n%s", reg, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "ns/op 100 -> 150 (+50.0%)") {
		t.Errorf("missing ns/op delta:\n%s", out)
	}
	if !strings.Contains(out, "allocs/op 1000 -> 1100 (+10.0%)") {
		t.Errorf("missing allocs/op delta:\n%s", out)
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	oldTr := trWith(Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: fp(1000)})
	newTr := trWith(Benchmark{Package: "p", Name: "BenchmarkA-8", NsPerOp: 90, AllocsPerOp: fp(1101)})
	var buf bytes.Buffer
	reg := diff(oldTr, newTr, &buf)
	if len(reg) != 1 || reg[0] != "p BenchmarkA-8" {
		t.Errorf("regressions: %v", reg)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", buf.String())
	}
}

func TestDiffZeroAllocMustStayZero(t *testing.T) {
	// 10% of zero is zero: a formerly allocation-free benchmark that now
	// allocates at all is a regression.
	oldTr := trWith(Benchmark{Package: "p", Name: "BenchmarkHot-8", NsPerOp: 5, AllocsPerOp: fp(0)})
	newTr := trWith(Benchmark{Package: "p", Name: "BenchmarkHot-8", NsPerOp: 5, AllocsPerOp: fp(1)})
	if reg := diff(oldTr, newTr, io.Discard); len(reg) != 1 {
		t.Errorf("regressions: %v", reg)
	}
}

func TestDiffIgnoresUnmatchedAndMissingMemstats(t *testing.T) {
	oldTr := trWith(
		Benchmark{Package: "p", Name: "BenchmarkGone-8", NsPerOp: 1, AllocsPerOp: fp(9)},
		Benchmark{Package: "p", Name: "BenchmarkNoMem-8", NsPerOp: 2},
	)
	newTr := trWith(
		Benchmark{Package: "p", Name: "BenchmarkNoMem-8", NsPerOp: 3},
		Benchmark{Package: "p", Name: "BenchmarkNew-8", NsPerOp: 4, AllocsPerOp: fp(99)},
	)
	var buf bytes.Buffer
	if reg := diff(oldTr, newTr, &buf); len(reg) != 0 {
		t.Errorf("regressions: %v", reg)
	}
	out := buf.String()
	if !strings.Contains(out, "- p BenchmarkGone-8: only in old") ||
		!strings.Contains(out, "+ p BenchmarkNew-8: only in new") {
		t.Errorf("missing only-in markers:\n%s", out)
	}
}

func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, tr *Trajectory) string {
		buf, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		p := dir + "/" + name
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", trWith(Benchmark{Package: "p", Name: "B-8", NsPerOp: 1, AllocsPerOp: fp(10)}))
	okP := write("ok.json", trWith(Benchmark{Package: "p", Name: "B-8", NsPerOp: 1, AllocsPerOp: fp(5)}))
	badP := write("bad.json", trWith(Benchmark{Package: "p", Name: "B-8", NsPerOp: 1, AllocsPerOp: fp(100)}))
	if code := runDiff(oldP, okP, io.Discard); code != 0 {
		t.Errorf("improvement exited %d", code)
	}
	if code := runDiff(oldP, badP, io.Discard); code != 1 {
		t.Errorf("regression exited %d", code)
	}
	if code := runDiff(dir+"/missing.json", okP, io.Discard); code != 1 {
		t.Errorf("missing file exited %d", code)
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	// Status lines like "BenchmarkFoo   " (no fields yet) and malformed rows
	// must be skipped, not fatal.
	in := "BenchmarkFoo\nBenchmarkBar-8 notanint 5 ns/op\nBenchmarkOk-8 2 7 ns/op\nPASS\n"
	tr, err := parse(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Benchmarks) != 1 || tr.Benchmarks[0].Name != "BenchmarkOk-8" {
		t.Errorf("benchmarks: %+v", tr.Benchmarks)
	}
}
