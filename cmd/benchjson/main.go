// Command benchjson distils `go test -bench` output into BENCH_pool.json,
// the repo's benchmark-trajectory artifact (schema documented in
// EXPERIMENTS.md). It reads the benchmark stream on stdin, echoes it through
// to stdout so progress stays visible, and writes one JSON document with a
// row per benchmark: iterations, ns/op and — when -benchmem was on — B/op
// and allocs/op.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem -benchtime=1x ./... | benchjson -o BENCH_pool.json
//	benchjson -diff old.json new.json
//
// benchjson exits non-zero when the stream contains a test failure or no
// benchmark lines at all, so a broken `make bench` cannot publish an empty
// trajectory.
//
// The -diff mode compares two trajectory documents benchmark by benchmark,
// printing ns/op and allocs/op deltas, and exits non-zero when any
// benchmark's allocs/op regressed by more than 10% — the repo's
// alloc-regression gate (DESIGN.md §5f).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only when -benchmem was on.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
}

// Trajectory is the BENCH_pool.json document.
type Trajectory struct {
	SchemaVersion int         `json:"schema_version"`
	GoOS          string      `json:"go_os,omitempty"`
	GoArch        string      `json:"go_arch,omitempty"`
	CPU           string      `json:"cpu,omitempty"`
	Benchmarks    []Benchmark `json:"benchmarks"`
}

// parse consumes a `go test -bench` stream, echoing every line to echo (nil
// disables the echo), and returns the trajectory. A FAIL line anywhere makes
// it an error: a broken suite must not publish a trajectory.
func parse(r io.Reader, echo io.Writer) (*Trajectory, error) {
	tr := &Trajectory{SchemaVersion: 1, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	failed := false
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "goos: "):
			tr.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			tr.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "cpu: "):
			tr.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
		case strings.HasPrefix(line, "FAIL"):
			failed = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				b.Package = pkg
				tr.Benchmarks = append(tr.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if failed {
		return nil, fmt.Errorf("benchmark stream contains a FAIL line")
	}
	return tr, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   12   98765 ns/op   2048 B/op   12 allocs/op
//
// Fields after the iteration count come in value/unit pairs; unknown units
// are ignored so future `go test` additions do not break the parser.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		case "MB/s":
			val := v
			b.MBPerS = &val
		}
	}
	return b, seen
}

// allocRegressionLimit is the fractional allocs/op growth tolerated by
// -diff before it fails: new > old·(1+limit) is a regression. A benchmark
// that was allocation-free must stay allocation-free (10% of zero is zero).
const allocRegressionLimit = 0.10

// benchKey identifies a benchmark across trajectory documents. The name
// includes the -cpu suffix (e.g. "-8"), so runs from differently shaped
// machines compare as disjoint sets rather than silently mismatching.
type benchKey struct {
	pkg, name string
}

// loadTrajectory reads one BENCH_pool.json-format document.
func loadTrajectory(path string) (*Trajectory, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	tr := &Trajectory{}
	if err := json.Unmarshal(buf, tr); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// pctDelta returns the percentage change from old to new. The ok result is
// false when old is zero and the change is therefore unrepresentable as a
// percentage (callers print the raw values instead).
func pctDelta(oldV, newV float64) (pct float64, ok bool) {
	if oldV == 0 {
		return 0, newV == 0
	}
	return (newV - oldV) / oldV * 100, true
}

// diff compares two trajectories benchmark by benchmark, writing one delta
// line per shared benchmark to w, and returns the benchmarks whose allocs/op
// regressed past allocRegressionLimit. Benchmarks present in only one
// document are reported but never fatal: the suite is allowed to grow and
// shrink; only a shared benchmark getting hungrier trips the gate.
func diff(oldTr, newTr *Trajectory, w io.Writer) (regressed []string) {
	oldBy := make(map[benchKey]Benchmark, len(oldTr.Benchmarks))
	for _, b := range oldTr.Benchmarks {
		oldBy[benchKey{b.Package, b.Name}] = b
	}
	matched := make(map[benchKey]bool, len(newTr.Benchmarks))
	for _, nb := range newTr.Benchmarks {
		k := benchKey{nb.Package, nb.Name}
		ob, ok := oldBy[k]
		if !ok {
			fmt.Fprintf(w, "+ %s %s: only in new\n", nb.Package, nb.Name)
			continue
		}
		matched[k] = true
		line := fmt.Sprintf("  %s %s: ns/op %.4g -> %.4g", nb.Package, nb.Name, ob.NsPerOp, nb.NsPerOp)
		if pct, ok := pctDelta(ob.NsPerOp, nb.NsPerOp); ok {
			line += fmt.Sprintf(" (%+.1f%%)", pct)
		}
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			oa, na := *ob.AllocsPerOp, *nb.AllocsPerOp
			line += fmt.Sprintf(", allocs/op %.6g -> %.6g", oa, na)
			pct, ok := pctDelta(oa, na)
			if ok && oa != 0 {
				line += fmt.Sprintf(" (%+.1f%%)", pct)
			}
			if na > oa*(1+allocRegressionLimit) {
				line += "  REGRESSION"
				regressed = append(regressed, k.pkg+" "+k.name)
			}
		}
		fmt.Fprintln(w, line)
	}
	for _, ob := range oldTr.Benchmarks {
		if k := (benchKey{ob.Package, ob.Name}); !matched[k] {
			fmt.Fprintf(w, "- %s %s: only in old\n", ob.Package, ob.Name)
		}
	}
	return regressed
}

// runDiff is the -diff entry point; returns the process exit code.
func runDiff(oldPath, newPath string, w io.Writer) int {
	oldTr, err := loadTrajectory(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	newTr, err := loadTrajectory(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	regressed := diff(oldTr, newTr, w)
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: allocs/op regressed >%.0f%% in %d benchmark(s):\n",
			allocRegressionLimit*100, len(regressed))
		for _, name := range regressed {
			fmt.Fprintln(os.Stderr, "  "+name)
		}
		return 1
	}
	return 0
}

func main() {
	out := flag.String("o", "BENCH_pool.json", "output JSON path")
	quiet := flag.Bool("q", false, "do not echo the benchmark stream to stdout")
	diffMode := flag.Bool("diff", false, "compare two trajectory JSON files: -diff old.json new.json")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff wants exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), os.Stdout))
	}

	var echo io.Writer
	if !*quiet {
		echo = os.Stdout
	}
	tr, err := parse(os.Stdin, echo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(tr.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", *out, len(tr.Benchmarks))
}
