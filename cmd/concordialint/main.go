// Command concordialint is the determinism and memory-discipline vettool: it
// runs the eight internal/lint analyzers (walltime, rngdiscipline,
// goroutinescope, maporder, floatsum, poolescape, scratchalias,
// handleliveness) over the module and exits non-zero on any finding or
// suppression-comment problem. `make lint` gates merges on it.
//
// Usage:
//
//	concordialint [-q] [./... | dir ...]
//
// With no arguments (or "./...") every package of the enclosing module is
// analyzed; otherwise only the named directories (module-relative or
// absolute). Findings print in vet format:
//
//	internal/scheduler/sched.go:42:15: walltime: time.Now reads the wall clock ...
//
// Suppressions (//lint:allow <rule> <reason>) are counted and listed so that
// every sanctioned escape stays visible in CI logs; -q hides the listing.
// Malformed suppressions (no reason), suppressions naming an unknown rule,
// and stale ones (matching no finding) are hard errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"concordia/internal/lint"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the //lint:allow summary listing")
	list := flag.Bool("help-rules", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}

	var dirs []string // nil = whole module
	for _, arg := range flag.Args() {
		if arg == "./..." || arg == "..." {
			dirs = nil
			break
		}
		abs := arg
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(wd, arg)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fatal(fmt.Errorf("%s is outside module %s", arg, root))
		}
		dirs = append(dirs, filepath.ToSlash(rel))
	}

	res, err := lint.RunModule(root, dirs)
	if err != nil {
		fatal(err)
	}
	if *quiet {
		res.Suppressed = nil
	}
	res.Report(os.Stderr, root)
	if !res.Clean() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "concordialint:", err)
	os.Exit(2)
}
