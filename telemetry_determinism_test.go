package concordia_test

// The telemetry subsystem inherits the repo's core guarantee: for a fixed
// seed the exported artifacts are byte-identical no matter how many workers
// execute the setup fan-out. The event trace and the metrics time series are
// both derived purely from the virtual-time simulation, which the Workers
// knob never touches.

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"concordia/internal/experiments"
)

func TestTelemetryWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario capture; skipped with -short")
	}
	base := experiments.Options{Seed: 42, Scale: 0.02, TrainingSlots: 150}
	type capture struct {
		workers int
		trace   bytes.Buffer
		metrics bytes.Buffer
	}
	captures := []*capture{{workers: 1}, {workers: 2}, {workers: 8}}
	for _, c := range captures {
		o := base
		o.Workers = c.workers
		if err := experiments.CaptureTelemetry(o, &c.trace, &c.metrics); err != nil {
			t.Fatalf("Workers=%d: %v", c.workers, err)
		}
		if c.trace.Len() == 0 || c.metrics.Len() == 0 {
			t.Fatalf("Workers=%d: empty export (trace %d bytes, metrics %d bytes)",
				c.workers, c.trace.Len(), c.metrics.Len())
		}
	}
	ref := captures[0]
	for _, c := range captures[1:] {
		if !bytes.Equal(ref.trace.Bytes(), c.trace.Bytes()) {
			t.Errorf("trace JSON differs between Workers=1 and Workers=%d:\n%s",
				c.workers, firstDiff(ref.trace.String(), c.trace.String()))
		}
		if !bytes.Equal(ref.metrics.Bytes(), c.metrics.Bytes()) {
			t.Errorf("metrics CSV differs between Workers=1 and Workers=%d:\n%s",
				c.workers, firstDiff(ref.metrics.String(), c.metrics.String()))
		}
	}

	// The exported trace must be loadable trace-event JSON: an object with a
	// traceEvents array whose entries all carry a phase.
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(ref.trace.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Ph == "" {
			t.Fatalf("trace event %d has no phase", i)
		}
	}
}

// firstDiff renders the first differing line of two texts.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			other := "<missing>"
			if i < len(lb) {
				other = lb[i]
			}
			return "line " + strconv.Itoa(i+1) + ":\n  a: " + truncate(la[i]) + "\n  b: " + truncate(other)
		}
	}
	return "b has extra lines"
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
