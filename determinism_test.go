package concordia_test

// Regression test for the parallel execution engine's core guarantee: the
// Workers knob changes wall-clock time and nothing else. Every experiment
// partitions its iteration space into fixed shards with their own RNG
// substreams (see internal/parallel), so its rendered output must be
// byte-for-byte identical whether one goroutine or eight execute it.

import (
	"bytes"
	"strings"
	"testing"

	"concordia/internal/experiments"
)

// wallClockOutputs are experiments whose rendered output embeds host
// wall-clock measurements (scheduler/predictor overhead in µs, calibration
// decode timings). Their simulated results are still worker-independent, but
// the printed timings legitimately vary run to run, so byte equality is not
// required of them.
var wallClockOutputs = map[string]bool{
	"fig15a":      true,
	"calibration": true,
}

func TestExperimentsWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short")
	}
	base := experiments.Options{Seed: 42, Scale: 0.005, TrainingSlots: 150}
	for _, name := range experiments.Names {
		t.Run(name, func(t *testing.T) {
			serial, fanout := base, base
			serial.Workers = 1
			fanout.Workers = 8
			var got1, got8 bytes.Buffer
			if err := experiments.Run(name, serial, &got1); err != nil {
				t.Fatal(err)
			}
			if err := experiments.Run(name, fanout, &got8); err != nil {
				t.Fatal(err)
			}
			if got1.Len() == 0 || got8.Len() == 0 {
				t.Fatal("experiment rendered no output")
			}
			if wallClockOutputs[name] {
				return
			}
			if !bytes.Equal(got1.Bytes(), got8.Bytes()) {
				l1 := strings.Split(got1.String(), "\n")
				l8 := strings.Split(got8.String(), "\n")
				for i := range l1 {
					if i >= len(l8) || l1[i] != l8[i] {
						t.Fatalf("output differs between Workers=1 and Workers=8 at line %d:\n  w1: %q\n  w8: %q", i+1, l1[i], l8[min(i, len(l8)-1)])
					}
				}
				t.Fatalf("output differs between Workers=1 and Workers=8 (w8 has %d extra bytes)", got8.Len()-got1.Len())
			}
		})
	}
}
