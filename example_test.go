package concordia_test

import (
	"fmt"

	"concordia"
)

// Example demonstrates the core workflow: configure a deployment, train the
// WCET predictors offline, run with a collocated workload, and read the
// reliability and reclaim results.
func Example() {
	cfg := concordia.Scenario20MHz(2, 4) // 2 cells, 4-core pool
	cfg.Workload = concordia.Redis
	cfg.Load = 0.25
	cfg.Seed = 1
	cfg.TrainingSlots = 500 // small offline phase for example speed

	sys, err := concordia.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	rep := sys.Run(concordia.Seconds(2))

	fmt.Printf("met deadlines: %v\n", rep.Misses == 0)
	fmt.Printf("reclaimed more than half the pool: %v\n", rep.ReclaimedFraction() > 0.5)
	// Output:
	// met deadlines: true
	// reclaimed more than half the pool: true
}
