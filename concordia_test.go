package concordia_test

import (
	"strings"
	"testing"

	"concordia"
)

func TestPublicQuickstart(t *testing.T) {
	cfg := concordia.Scenario20MHz(2, 4)
	cfg.Workload = concordia.Redis
	cfg.Load = 0.25
	cfg.Seed = 1
	cfg.TrainingSlots = 500
	sys, err := concordia.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(concordia.Seconds(2))
	if rep.DAGsCompleted == 0 {
		t.Fatal("no slots processed")
	}
	if rep.Reliability() < 0.999 {
		t.Fatalf("reliability %.5f", rep.Reliability())
	}
	if !strings.Contains(rep.String(), "reclaimed") {
		t.Fatal("report summary incomplete")
	}
}

func TestPublicMinimumCores(t *testing.T) {
	cfg := concordia.Scenario20MHz(1, 0)
	cfg.Load = 0.3
	cfg.Seed = 2
	cfg.TrainingSlots = 400
	n, err := concordia.MinimumCores(cfg, 6, 0.999, concordia.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 6 {
		t.Fatalf("minimum cores %d", n)
	}
}

func TestTimeHelpers(t *testing.T) {
	if concordia.Seconds(1) != concordia.Milliseconds(1000) {
		t.Fatal("seconds/milliseconds mismatch")
	}
	if concordia.Milliseconds(1) != concordia.Microseconds(1000) {
		t.Fatal("milliseconds/microseconds mismatch")
	}
}

func TestSchedulerKinds(t *testing.T) {
	for _, k := range []concordia.SchedulerKind{
		concordia.SchedConcordia, concordia.SchedFlexRAN,
		concordia.SchedShenango, concordia.SchedUtilization,
	} {
		cfg := concordia.Scenario20MHz(1, 2)
		cfg.Scheduler = k
		cfg.Seed = 3
		cfg.TrainingSlots = 300
		sys, err := concordia.NewSystem(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if rep := sys.Run(concordia.Seconds(1)); rep.Slots == 0 {
			t.Fatalf("%v ran no slots", k)
		}
	}
}

func TestPublicLTEScenario(t *testing.T) {
	cfg := concordia.ScenarioLTE(2, 3)
	cfg.Seed = 5
	cfg.TrainingSlots = 400
	cfg.Load = 0.2
	sys, err := concordia.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep := sys.Run(concordia.Seconds(1)); rep.DAGsCompleted == 0 {
		t.Fatal("LTE scenario processed nothing")
	}
}
