// Package concordia is a from-scratch reproduction of "Concordia: Teaching
// the 5G vRAN to Share Compute" (Foukas & Radunovic, SIGCOMM 2021): a
// userspace deadline-scheduling framework that lets a virtualized RAN share
// CPU cores with best-effort workloads while meeting 99.999% of its
// sub-millisecond signal-processing deadlines.
//
// The package assembles the full system on a deterministic discrete-event
// platform (see DESIGN.md for the substitution rationale): a 5G PHY task
// substrate, per-TTI traffic generation, the quantile-decision-tree WCET
// predictor (the paper's §4 contribution), the federated mixed-criticality
// scheduler with its 20 µs re-evaluation loop (§3), baseline schedulers and
// predictors, collocated workload models, and the OS latency/cache effects
// the evaluation hinges on.
//
// Quick start:
//
//	cfg := concordia.Scenario20MHz(7, 8)   // 7 cells, 8-core pool
//	cfg.Workload = concordia.Redis          // collocate Redis
//	cfg.Load = 0.25                         // 25% of max average load
//	sys, err := concordia.NewSystem(cfg)    // offline profiling + training
//	if err != nil { ... }
//	report := sys.Run(concordia.Seconds(60))
//	fmt.Println(report)                     // reliability, tails, reclaim
package concordia

import (
	"concordia/internal/core"
	"concordia/internal/faults"
	"concordia/internal/fleet"
	"concordia/internal/pool"
	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/slo"
	"concordia/internal/telemetry"
	"concordia/internal/workloads"
)

// Core types, re-exported from the internal assembly.
type (
	// Config describes one deployment scenario: cells, pool size,
	// scheduler, collocated workload, traffic load and deadline.
	Config = core.Config
	// System is a trained, assembled deployment. Create with NewSystem.
	System = core.System
	// Report carries everything a run measures: reliability, latency
	// tails, reclaimed CPU, scheduling events, workload throughput.
	Report = pool.Report
	// SchedulerKind selects the core-allocation policy.
	SchedulerKind = core.SchedulerKind
	// WorkloadKind selects the collocated best-effort workload.
	WorkloadKind = workloads.Kind
	// Time is a virtual-time instant or duration in nanoseconds.
	Time = sim.Time
	// Telemetry records a run's structured event trace and metrics time
	// series. Create with NewTelemetry, attach via Config.Telemetry, export
	// with System.WriteChromeTrace / System.WriteMetricsCSV.
	Telemetry = telemetry.Recorder
	// TelemetryOptions configures trace capacity and metrics sampling.
	TelemetryOptions = telemetry.Options
	// FaultsConfig enables the deterministic chaos injector: lane failures,
	// stuck offloads, WCET overruns, interference bursts, core-yield storms,
	// and late/dropped fronthaul. Attach via Config.Faults; build from a
	// "class=rate,..." spec with ParseFaults. A nil or all-zero config leaves
	// every run byte-identical to a fault-free one.
	FaultsConfig = faults.Config
	// FleetConfig describes a pooled C-RAN cluster run: N Concordia servers,
	// hundreds of cells placed by fronthaul latency, migration under
	// sustained pressure (DESIGN.md §5h). Run with RunFleet.
	FleetConfig = fleet.Config
	// FleetResult is a fleet run's outcome: placement and migration counts,
	// fleet-wide deadline misses, and the pooling-gain accounting.
	FleetResult = fleet.Result
	// FleetPlacementConfig tunes the fleet's admission and hysteresis
	// migration policy.
	FleetPlacementConfig = fleet.PlacementConfig
	// SLOOptions enables the streaming SLO plane (DESIGN.md §5j): windowed
	// mergeable quantile sketches, per-slice burn-rate alerts, and the fleet
	// health report. Attach via Config.SLO (the zero value selects the
	// URLLC/eMBB presets); export with System.WriteSLOCSV /
	// System.WriteSLOReport or inspect with System.SLO.
	SLOOptions = slo.Options
	// SLOTracker is the live SLO aggregation state: window rows, the alert
	// timeline, and per-slice/per-cell summaries.
	SLOTracker = slo.Tracker
	// SLOObjective is one slice's latency-quantile target and deadline-miss
	// error budget.
	SLOObjective = slo.Objective
)

// Scheduling policies.
const (
	// SchedConcordia is the paper's federated mixed-criticality scheduler
	// driven by quantile-tree WCET predictions, re-evaluated every 20 µs.
	SchedConcordia = core.SchedConcordia
	// SchedFlexRAN is the vanilla queue-driven baseline with static
	// per-cell core partitioning.
	SchedFlexRAN = core.SchedFlexRAN
	// SchedShenango is the queueing-delay baseline of §6.3.
	SchedShenango = core.SchedShenango
	// SchedUtilization is the utilization-threshold baseline of §6.3.
	SchedUtilization = core.SchedUtilization
)

// Collocated workloads (§6's evaluation set).
const (
	Isolated = workloads.None
	Redis    = workloads.Redis
	Nginx    = workloads.Nginx
	TPCC     = workloads.TPCC
	MLPerf   = workloads.MLPerf
	Mix      = workloads.Mix
)

// NewSystem profiles the configured cells offline, trains one quantile
// decision tree per signal-processing task (Algorithm 1), and assembles the
// vRAN pool with the chosen scheduler and workloads.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// NewTelemetry returns an enabled telemetry recorder. The zero Options value
// selects the defaults (256 Ki event ring, one metrics sample per slot).
func NewTelemetry(opts TelemetryOptions) *Telemetry { return telemetry.New(opts) }

// ParseFaults builds a fault-injection config from a comma-separated spec,
// e.g. "lane=0.05,stuck=0.01,burst=5" or the "all" preset. An empty spec
// returns the zero (disabled) config.
func ParseFaults(spec string) (FaultsConfig, error) { return faults.Parse(spec) }

// RunFleet simulates a pooled C-RAN cluster: every server is a full
// Concordia pool+sim instance, cells are admitted within their fronthaul
// budget and migrate between servers under sustained pressure. Byte-identical
// at any FleetConfig.Workers count.
func RunFleet(cfg FleetConfig) (*FleetResult, error) { return fleet.Run(cfg) }

// Scenario20MHz returns the paper's 7×20 MHz FDD deployment preset
// (2 ms slot deadline). Adjust cells/cores as needed.
func Scenario20MHz(cells, cores int) Config { return core.Scenario20MHz(cells, cores) }

// Scenario100MHz returns the paper's 2×100 MHz TDD deployment preset
// (1.5 ms slot deadline, 0.5 ms slots, 4×4 MIMO).
func Scenario100MHz(cells, cores int) Config { return core.Scenario100MHz(cells, cores) }

// ScenarioLTE returns a 4G deployment preset: 20 MHz FDD cells with turbo
// data coding (the cell class behind the paper's §2.2 trace measurements).
func ScenarioLTE(cells, cores int) Config {
	cfg := core.Scenario20MHz(cells, cores)
	cfg.Cells = ran.CellsLTE(cells)
	return cfg
}

// MinimumCores finds the smallest pool that meets the deadline with the
// given reliability at the configured load (the paper's provisioning
// methodology).
func MinimumCores(cfg Config, maxCores int, reliability float64, probe Time) (int, error) {
	return core.MinimumCores(cfg, maxCores, reliability, probe)
}

// Seconds converts seconds to Time.
func Seconds(s float64) Time { return Time(s * float64(sim.Second)) }

// Milliseconds converts milliseconds to Time.
func Milliseconds(ms float64) Time { return sim.FromMs(ms) }

// Microseconds converts microseconds to Time.
func Microseconds(us float64) Time { return sim.FromUs(us) }
