// Accelerator: the §7 extension — offload LDPC encode/decode to the modeled
// FPGA and observe the Table 3/4 effects: fewer CPU cores, persistent
// underutilization, and worker blocking time while offloads are in flight.
package main

import (
	"fmt"

	"concordia"
	"concordia/internal/ran"
)

func main() {
	for _, useAccel := range []bool{false, true} {
		cfg := concordia.Scenario100MHz(1, 4)
		cfg.UseAccel = useAccel
		cfg.Load = 1.0
		cfg.Seed = 13

		sys, err := concordia.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		rep := sys.Run(concordia.Seconds(20))
		mode := "software LDPC"
		if useAccel {
			mode = "FPGA-offloaded LDPC"
		}
		fmt.Printf("=== %s ===\n", mode)
		fmt.Printf("reliability         %.5f%%\n", 100*rep.Reliability())
		fmt.Printf("pool utilization    %.1f%%\n", 100*rep.RANUtilization())
		fmt.Printf("uplink   CPU %v / total %v per slot\n",
			rep.AvgCPUPerDAG(ran.Uplink), rep.AvgMakespanPerDAG(ran.Uplink))
		fmt.Printf("downlink CPU %v / total %v per slot\n\n",
			rep.AvgCPUPerDAG(ran.Downlink), rep.AvgMakespanPerDAG(ran.Downlink))
	}
}
