// Fleet: a pooled C-RAN cluster of 4 Concordia servers sharing 40 cells.
// Cells land on their nearest server within the fronthaul-latency budget;
// between placement epochs the coordinator migrates cells off servers under
// sustained load/miss pressure. One migration is forced at epoch 2 so the
// mechanism is always visible, whatever the pressure profile — watch the
// per-epoch table and the final placement spread.
//
// With -slo the streaming SLO plane runs on every server and the fleet-merged
// window rows land in the given CSV file; -slo-report writes the markdown
// fleet-health report (per-slice budget burn, top burning cells, alert
// timeline). Both are byte-identical at any worker count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"concordia"
)

func writeExport(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	sloOut := flag.String("slo", "", "attach the streaming SLO plane and write fleet-merged window rows CSV to this file")
	sloReport := flag.String("slo-report", "", "attach the streaming SLO plane and write the markdown fleet-health report to this file")
	sloWindow := flag.Float64("slo-window", 0, "SLO tumbling sub-window width in ms (0 = default 20)")
	sloBurn := flag.Float64("slo-burn", 0, "SLO burn-rate alert threshold (0 = default 14.4)")
	flag.Parse()

	cfg := concordia.FleetConfig{
		Cells:          40,
		Servers:        4,
		CoresPerServer: 6,
		Load:           0.5,
		Horizon:        concordia.Seconds(0.5),
		Epochs:         5,
		// Demonstrate the migration machinery deterministically: epoch 2
		// starts by moving the most-loaded server's hottest movable cell.
		ForceMigrateEpoch: 2,
		Seed:              11,
		TrainingSlots:     400,
	}
	if *sloOut != "" || *sloReport != "" {
		cfg.SLO = &concordia.SLOOptions{
			Window:        concordia.Milliseconds(*sloWindow),
			BurnThreshold: *sloBurn,
		}
	}
	res, err := concordia.RunFleet(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(res)

	fmt.Println("\nepoch  migrations  dags     misses  req-cores  max-pressure")
	for e, ep := range res.Epochs {
		fmt.Printf("%-6d %-11d %-8d %-7d %-10d %.3f\n",
			e, ep.Migrations, ep.DAGs, ep.Misses, ep.RequiredCores, ep.MaxPressure)
	}

	perServer := make([]int, cfg.Servers)
	for _, s := range res.Assign {
		if s >= 0 {
			perServer[s]++
		}
	}
	fmt.Println("\nfinal placement (cells per server):")
	for s, n := range perServer {
		fmt.Printf("  server %d: %d cells\n", s, n)
	}

	if res.SLO != nil {
		fmt.Println("\nfleet SLO slices:")
		for _, s := range res.SLO.SliceSummaries() {
			fmt.Printf("  %-6s attempts %-7d misses %-5d budget remaining %.3f\n",
				s.Name, s.Attempts, s.Misses, s.BudgetRemaining)
		}
		if *sloOut != "" {
			if err := writeExport(*sloOut, res.SLO.WriteCSV); err != nil {
				panic(err)
			}
		}
		if *sloReport != "" {
			if err := writeExport(*sloReport, res.SLO.WriteHealthReport); err != nil {
				panic(err)
			}
		}
	}
}
