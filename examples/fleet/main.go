// Fleet: a pooled C-RAN cluster of 4 Concordia servers sharing 40 cells.
// Cells land on their nearest server within the fronthaul-latency budget;
// between placement epochs the coordinator migrates cells off servers under
// sustained load/miss pressure. One migration is forced at epoch 2 so the
// mechanism is always visible, whatever the pressure profile — watch the
// per-epoch table and the final placement spread.
package main

import (
	"fmt"

	"concordia"
)

func main() {
	cfg := concordia.FleetConfig{
		Cells:          40,
		Servers:        4,
		CoresPerServer: 6,
		Load:           0.5,
		Horizon:        concordia.Seconds(0.5),
		Epochs:         5,
		// Demonstrate the migration machinery deterministically: epoch 2
		// starts by moving the most-loaded server's hottest movable cell.
		ForceMigrateEpoch: 2,
		Seed:              11,
		TrainingSlots:     400,
	}
	res, err := concordia.RunFleet(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(res)

	fmt.Println("\nepoch  migrations  dags     misses  req-cores  max-pressure")
	for e, ep := range res.Epochs {
		fmt.Printf("%-6d %-11d %-8d %-7d %-10d %.3f\n",
			e, ep.Migrations, ep.DAGs, ep.Misses, ep.RequiredCores, ep.MaxPressure)
	}

	perServer := make([]int, cfg.Servers)
	for _, s := range res.Assign {
		if s >= 0 {
			perServer[s]++
		}
	}
	fmt.Println("\nfinal placement (cells per server):")
	for s, n := range perServer {
		fmt.Printf("  server %d: %d cells\n", s, n)
	}
}
