// Multicell: the paper's 7×20 MHz pooled deployment under the mixed
// workload, comparing the Concordia scheduler against vanilla FlexRAN —
// reliability, tail latency, reclaimed CPU and scheduling churn side by
// side (the Fig 10/11 story).
package main

import (
	"fmt"

	"concordia"
)

func main() {
	const duration = 30.0
	for _, sched := range []concordia.SchedulerKind{
		concordia.SchedConcordia, concordia.SchedFlexRAN,
	} {
		cfg := concordia.Scenario20MHz(7, 8)
		cfg.Scheduler = sched
		cfg.Workload = concordia.Mix
		cfg.Load = 0.5
		cfg.Seed = 11

		sys, err := concordia.NewSystem(cfg)
		if err != nil {
			panic(err)
		}
		rep := sys.Run(concordia.Seconds(duration))
		fmt.Printf("=== %s ===\n", sched)
		fmt.Printf("reliability      %.5f%%\n", 100*rep.Reliability())
		fmt.Printf("p99.99 latency   %.0f us (deadline %.0f us)\n",
			rep.TailLatencyUs(0.9999), cfg.Deadline.Us())
		fmt.Printf("reclaimed CPU    %.1f%%\n", 100*rep.ReclaimedFraction())
		fmt.Printf("sched events/ms  %.2f\n\n", rep.CoreChurnPerMs())
	}
}
