// Predictor: train the quantile decision tree for LDPC decoding offline,
// inspect its structure, then adapt it online with interfered runtimes —
// Algorithms 1 and 2 of the paper, end to end.
package main

import (
	"fmt"

	"concordia/internal/core"
	"concordia/internal/costmodel"
	"concordia/internal/predictor"
	"concordia/internal/ran"
)

func main() {
	model := costmodel.New(3)

	// Offline phase: profile the vRAN in isolation across the input space.
	fmt.Println("offline profiling (isolated vRAN)...")
	data := core.Profile(ran.Cells20MHz(2), 2000, model, 4, 99)
	decode := data[ran.TaskLDPCDecode]
	fmt.Printf("collected %d LDPC decode samples\n", len(decode))

	// Algorithm 1: feature selection, then tree training.
	feats := predictor.SelectFeatures(ran.TaskLDPCDecode, decode, 6, 3)
	fmt.Print("selected features:")
	for _, f := range feats {
		fmt.Printf(" %v", f)
	}
	fmt.Println()
	tree, err := predictor.TrainQuantileTree(ran.TaskLDPCDecode, feats, decode,
		predictor.TreeConfig{MaxLeaves: 16, MaxDepth: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Print(tree) // the full tree structure

	// Parameterized predictions (the §4.1 point).
	query := func(cbs int, snr float64) {
		var f ran.FeatureVector
		f.Set(ran.FCodeblocks, float64(cbs))
		f.Set(ran.FSNRdB, snr)
		f.Set(ran.FTBSBits, float64(cbs*8448))
		fmt.Printf("WCET(%2d codeblocks, %4.1f dB) = %v\n", cbs, snr, tree.Predict(f))
	}
	fmt.Println()
	query(1, 28)
	query(8, 15)
	query(15, 2)

	// Online phase (Algorithm 2): observe interfered runtimes; predictions
	// rise without retraining the tree.
	fmt.Println("\nadapting online under cache interference (redis collocated)...")
	inter := costmodel.Env{PoolCores: 4, Interference: 0.95}
	var probe ran.FeatureVector
	probe.Set(ran.FCodeblocks, 8)
	probe.Set(ran.FSNRdB, 15)
	probe.Set(ran.FTBSBits, 8*8448)
	before := tree.Predict(probe)
	for i := 0; i < 20000; i++ {
		s := decode[i%len(decode)]
		tree.Observe(s.Features, model.Sample(ran.TaskLDPCDecode, s.Features, inter))
	}
	after := tree.Predict(probe)
	fmt.Printf("WCET(8 codeblocks, 15 dB): %v isolated -> %v under interference\n", before, after)
}
