// Tracereplay: the paper's trace-driven methodology end to end — generate
// an LTE-statistics capture (§2.2), scale it >10× into a 5G benchmark, and
// drive the Concordia pool with it, with the MAC-layer extension (§7)
// multiplexed on the same cores.
package main

import (
	"fmt"

	"concordia"
	"concordia/internal/traffic"
)

func main() {
	// Step 1: a 3-cell LTE-statistics trace, one simulated minute of TTIs.
	trace, err := traffic.GenerateTrace(traffic.LTEReference(3, 21), 60000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("captured trace: %d TTIs, single-cell idle %.0f%%, aggregate idle %.0f%%\n",
		len(trace.Volumes), 100*trace.IdleFraction(0), 100*trace.IdleFraction(-1))

	// Step 2: replay it, volume-scaled ×12 (the paper's 5G scaling), with
	// the MAC extension active.
	cfg := concordia.Scenario20MHz(3, 6)
	cfg.Workload = concordia.TPCC
	cfg.ULTrace = trace
	cfg.DLTrace = trace
	cfg.TraceScale = 12
	cfg.IncludeMAC = true
	cfg.Seed = 22

	sys, err := concordia.NewSystem(cfg)
	if err != nil {
		panic(err)
	}
	rep := sys.Run(concordia.Seconds(30))
	fmt.Println()
	fmt.Print(rep)
	fmt.Printf("\ntpcc throughput: %.0f tx/s against the trace-driven vRAN\n",
		rep.WorkloadThroughput(concordia.TPCC)/30)
}
