// Quickstart: collocate a Redis workload with a small vRAN pool under the
// Concordia scheduler and print what the paper's headline claims look like
// on this substrate — reclaimed CPU with five-nines-style reliability.
package main

import (
	"fmt"

	"concordia"
)

func main() {
	// Two 20 MHz FDD cells on a 4-core pool, lightly loaded.
	cfg := concordia.Scenario20MHz(2, 4)
	cfg.Workload = concordia.Redis
	cfg.Load = 0.25
	cfg.Seed = 7

	fmt.Println("profiling offline and training quantile decision trees...")
	sys, err := concordia.NewSystem(cfg)
	if err != nil {
		panic(err)
	}

	fmt.Println("running 30 simulated seconds with Redis collocated...")
	rep := sys.Run(concordia.Seconds(30))

	fmt.Println()
	fmt.Print(rep)
	fmt.Println()
	fmt.Printf("redis was granted %.1f core-seconds and achieved %.2fM ops\n",
		rep.WorkloadCoreSeconds(concordia.Redis),
		rep.WorkloadThroughput(concordia.Redis)/1e6)
}
